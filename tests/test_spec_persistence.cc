/**
 * @file
 * Unit tests: speculative persistence -- trigger conditions, epochs, the
 * sfence-pcommit-sfence peephole, structural-hazard stalls, Bloom/SSB/BLT
 * integration, probe aborts and rollback (paper Section 4).
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"

using namespace sp;

namespace
{

constexpr Addr kA = 0x10000000;

/** One paper-style persist barrier. */
void
barrier(std::vector<MicroOp> &ops)
{
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::sfence());
}

/** A transaction-ish burst: store+clwb then a barrier, repeated. */
std::vector<MicroOp>
barrierChain(unsigned barriers, unsigned trailing_alu = 400)
{
    std::vector<MicroOp> ops;
    for (unsigned i = 0; i < barriers; ++i) {
        ops.push_back(MicroOp::store(kA + i * 4096, i + 1, 8));
        ops.push_back(MicroOp::clwb(kA + i * 4096));
        barrier(ops);
    }
    for (unsigned i = 0; i < trailing_alu; ++i)
        ops.push_back(MicroOp::alu(1));
    return ops;
}

struct Machine
{
    SimConfig cfg;
    MemImage durable;
    Stats stats;

    explicit Machine(bool sp = true) { cfg.sp.enabled = sp; }

    Tick
    run(std::vector<MicroOp> ops,
        const std::vector<std::pair<Tick, Addr>> &probes = {})
    {
        TraceProgram prog(std::move(ops));
        MemSystem mc(cfg.mem, durable);
        CacheHierarchy caches(cfg, mc);
        mc.setStats(&stats);
        caches.setStats(&stats);
        OooCore core(cfg, prog, caches, mc, stats);
        for (auto &[t, a] : probes)
            core.scheduleProbe(t, a);
        core.run();
        caches.writebackAll();
        mc.drainAll();
        return stats.cycles;
    }
};

} // namespace

TEST(Spec, TriggersOnBlockedFenceBehindPcommit)
{
    Machine m;
    m.run(barrierChain(1));
    EXPECT_EQ(m.stats.epochsStarted, 1u);
    EXPECT_EQ(m.stats.epochsCommitted, 1u);
}

TEST(Spec, NoSpeculationWhenDisabled)
{
    Machine m(false);
    m.run(barrierChain(2));
    EXPECT_EQ(m.stats.epochsStarted, 0u);
    EXPECT_EQ(m.stats.ssbEnqueues, 0u);
}

TEST(Spec, SpeculationHidesBarrierLatency)
{
    Machine sp(true), nosp(false);
    Tick with = sp.run(barrierChain(4, 2000));
    Tick without = nosp.run(barrierChain(4, 2000));
    EXPECT_LT(with, without);
    // The bulk of 4 x ~325-cycle barrier waits should be gone.
    EXPECT_LT(without - with, 4u * 400);
    EXPECT_GT(without - with, 300u);
}

TEST(Spec, SpsPeepholeFoldsTriples)
{
    Machine m;
    m.run(barrierChain(4));
    // First barrier triggers; the following three fold into kSps.
    EXPECT_EQ(m.stats.spsTriples, 3u);
    EXPECT_EQ(m.stats.epochsStarted, 4u);
}

TEST(Spec, PeepholeDisableUsesMoreEpochs)
{
    Machine on(true), off(true);
    off.cfg.sp.spsPeephole = false;
    off.cfg.sp.checkpoints = 16; // room for the extra epochs
    on.run(barrierChain(4));
    off.run(barrierChain(4));
    EXPECT_EQ(off.stats.spsTriples, 0u);
    EXPECT_GT(off.stats.epochsStarted, on.stats.epochsStarted);
}

TEST(Spec, SpeculativeStoresEnterSsb)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    // Stores in the shadow of the barrier.
    for (int i = 0; i < 5; ++i)
        ops.push_back(MicroOp::store(kA + 0x8000 + i * 8, i, 8));
    for (int i = 0; i < 200; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    EXPECT_GE(m.stats.ssbEnqueues, 5u);
    // The background drain keeps occupancy below the enqueue count.
    EXPECT_GE(m.stats.ssbMaxOccupancy, 3u);
}

TEST(Spec, SpeculativeStateStillPersists)
{
    Machine m;
    // Two full transactions' worth of barriers; everything must be
    // durable at the end regardless of speculation.
    m.run(barrierChain(4));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(m.durable.readInt(kA + i * 4096, 8),
                  static_cast<uint64_t>(i + 1));
}

TEST(Spec, ExitResetsBloomAndBlt)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    ops.push_back(MicroOp::store(kA + 0x8000, 1, 8));
    // Long independent tail so speculation fully drains and exits.
    for (int i = 0; i < 3000; ++i)
        ops.push_back(MicroOp::alu(1));
    TraceProgram prog(std::move(ops));
    MemSystem mc(m.cfg.mem, m.durable);
    CacheHierarchy caches(m.cfg, mc);
    OooCore core(m.cfg, prog, caches, mc, m.stats);
    core.run();
    EXPECT_FALSE(core.speculating());
    EXPECT_EQ(core.bloom().popcount(), 0u);
    EXPECT_EQ(core.blt().size(), 0u);
    EXPECT_TRUE(core.ssb().empty());
}

TEST(Spec, CheckpointExhaustionStalls)
{
    Machine few(true), many(true);
    few.cfg.sp.checkpoints = 2;
    many.cfg.sp.checkpoints = 8;
    // Back-to-back barriers with no work between: needs many checkpoints.
    Tick t_few = few.run(barrierChain(6, 0));
    Tick t_many = many.run(barrierChain(6, 0));
    EXPECT_GT(few.stats.checkpointStallCycles,
              many.stats.checkpointStallCycles);
    EXPECT_GE(t_few, t_many);
}

TEST(Spec, TinySsbStalls)
{
    Machine small(true), big(true);
    small.cfg.sp.ssbEntries = 4;
    big.cfg.sp.ssbEntries = 256;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    for (int i = 0; i < 64; ++i)
        ops.push_back(MicroOp::store(kA + 0x8000 + i * 8, i, 8));
    for (int i = 0; i < 100; ++i)
        ops.push_back(MicroOp::alu(1));
    small.run(ops);
    std::vector<MicroOp> ops2 = barrierChain(1, 0);
    for (int i = 0; i < 64; ++i)
        ops2.push_back(MicroOp::store(kA + 0x8000 + i * 8, i, 8));
    for (int i = 0; i < 100; ++i)
        ops2.push_back(MicroOp::alu(1));
    big.run(ops2);
    EXPECT_GT(small.stats.ssbFullStallCycles, 0u);
    EXPECT_EQ(big.stats.ssbFullStallCycles, 0u);
}

TEST(Spec, LoadsConsultBloomFilter)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    // A serial chain delays the following ops' issue until after the
    // fence has triggered speculation but before the pcommit completes
    // (loads execute at issue, so without this they would run before the
    // speculative mode begins).
    for (int i = 0; i < 200; ++i)
        ops.push_back(MicroOp::aluChain(1, i == 0 ? 0 : 1));
    ops.push_back(MicroOp::store(kA + 0x8000, 42, 8, 1));
    for (int i = 0; i < 30; ++i)
        ops.push_back(MicroOp::aluChain(1, 1));
    // A load to the speculatively stored block: bloom hit (the filter is
    // only reset at speculation exit, even if the SSB already drained).
    ops.push_back(MicroOp::load(kA + 0x8000, 8, 1));
    // And a load elsewhere: bloom miss.
    ops.push_back(MicroOp::load(kA + 0xC000, 8, 2));
    for (int i = 0; i < 200; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    EXPECT_GE(m.stats.bloomLookups, 2u);
    EXPECT_GE(m.stats.bloomHits, 1u);
}

TEST(Spec, StandalonePcommitDelayedInSsb)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    // A lone pcommit in the speculative shadow (no surrounding fences).
    ops.push_back(MicroOp::store(kA + 0x8000, 1, 8));
    ops.push_back(MicroOp::clwb(kA + 0x8000));
    ops.push_back(MicroOp::pcommit());
    for (int i = 0; i < 2000; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    EXPECT_EQ(m.stats.pcommits, 2u);
    EXPECT_EQ(m.durable.readInt(kA + 0x8000, 8), 1u);
}

TEST(Spec, BareFenceWithoutPersistOpsRetiresSilently)
{
    // An sfence inside speculation whose epoch has no delayed PMEM ops
    // imposes nothing the SSB's FIFO does not already guarantee.
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    ops.push_back(MicroOp::store(kA + 0x8000, 1, 8));
    ops.push_back(MicroOp::sfence()); // bare: no clwb/pcommit before it
    ops.push_back(MicroOp::store(kA + 0x8040, 2, 8));
    for (int i = 0; i < 2000; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    // Only the trigger epoch: the bare fence spent no checkpoint.
    EXPECT_EQ(m.stats.epochsStarted, 1u);
}

TEST(Spec, ProbeConflictAborts)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    ops.push_back(MicroOp::store(kA + 0x8000, 7, 8));
    for (int i = 0; i < 4000; ++i)
        ops.push_back(MicroOp::alu(1));
    // Probe the speculatively written block while speculation is live.
    // The trigger happens shortly after the store buffer drains; probe
    // generously within the window.
    Tick t = m.run(ops, {{50, kA + 0x8000}, {80, kA + 0x8000},
                         {110, kA + 0x8000}, {140, kA + 0x8000},
                         {170, kA + 0x8000}, {200, kA + 0x8000}});
    (void)t;
    EXPECT_GE(m.stats.aborts, 1u);
    // Re-execution still produces the correct durable state.
    EXPECT_EQ(m.durable.readInt(kA, 8), 1u);
    EXPECT_EQ(m.durable.readInt(kA + 0x8000, 8), 7u);
}

TEST(Spec, ProbeToUntouchedBlockDoesNotAbort)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(2, 1000);
    m.run(ops, {{60, kA + 0x70000}, {120, kA + 0x70000}});
    EXPECT_EQ(m.stats.aborts, 0u);
}

TEST(Spec, AbortAndReexecutionMatchesNonSpeculative)
{
    // The same trace with an abort mid-speculation must still produce
    // the exact same durable data as a non-speculative machine.
    auto build = [] {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 3; ++i) {
            ops.push_back(MicroOp::store(kA + i * 4096, 100 + i, 8));
            ops.push_back(MicroOp::clwb(kA + i * 4096));
            barrier(ops);
            ops.push_back(MicroOp::store(kA + 0x40000 + i * 64, i, 8));
            ops.push_back(MicroOp::clwb(kA + 0x40000 + i * 64));
            barrier(ops);
        }
        for (int i = 0; i < 500; ++i)
            ops.push_back(MicroOp::alu(1));
        return ops;
    };
    Machine spec(true);
    std::vector<std::pair<Tick, Addr>> probes;
    for (Tick t = 40; t < 2000; t += 37)
        probes.emplace_back(t, kA + 0x40000);
    spec.run(build(), probes);
    EXPECT_GE(spec.stats.aborts, 1u);

    Machine plain(false);
    plain.run(build());
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(spec.durable.readInt(kA + i * 4096, 8),
                  plain.durable.readInt(kA + i * 4096, 8));
        EXPECT_EQ(spec.durable.readInt(kA + 0x40000 + i * 64, 8),
                  plain.durable.readInt(kA + 0x40000 + i * 64, 8));
    }
}

TEST(Spec, XchgFormsEpochBoundary)
{
    Machine m;
    std::vector<MicroOp> ops = barrierChain(1, 0);
    ops.push_back(MicroOp::store(kA + 0x8000, 1, 8));
    ops.push_back(MicroOp::clwb(kA + 0x8000)); // persist op in the epoch
    ops.push_back(MicroOp::xchg(kA + 0x9000, 5));
    for (int i = 0; i < 3000; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    // Trigger epoch + child created at the xchg boundary.
    EXPECT_GE(m.stats.epochsStarted, 2u);
    EXPECT_EQ(m.durable.readInt(kA + 0x8000, 8), 1u);
}

TEST(Spec, CyclesNeverWorseThanDoubleNoSpec)
{
    // Sanity guard: speculation must never catastrophically regress.
    Machine sp(true), nosp(false);
    Tick with = sp.run(barrierChain(8, 500));
    Tick without = nosp.run(barrierChain(8, 500));
    EXPECT_LT(with, without + 100);
}

TEST(Spec, MaxInflightPcommitsBounded)
{
    Machine m;
    m.run(barrierChain(8, 200));
    // With 4 checkpoints there can be at most ~4 epochs' flushes live.
    EXPECT_LE(m.stats.maxInflightPcommits, 5u);
    EXPECT_GE(m.stats.maxInflightPcommits, 1u);
}
