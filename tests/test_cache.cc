/**
 * @file
 * Unit tests: a single cache level.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "mem/cache.hh"

using namespace sp;

namespace
{

Cache
smallCache()
{
    // 4 sets x 2 ways x 64B = 512B.
    return Cache("test", CacheConfig{512, 2, 1});
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache cache = smallCache();
    EXPECT_EQ(cache.find(0x1000), nullptr);
    Cache::Victim victim;
    Cache::Block *blk = cache.allocate(0x1000, &victim);
    ASSERT_NE(blk, nullptr);
    EXPECT_FALSE(victim.valid);
    EXPECT_NE(cache.find(0x1000), nullptr);
}

TEST(Cache, TagIncludesFullAddress)
{
    Cache cache = smallCache();
    cache.allocate(0x1000, nullptr);
    // Same set (4 sets * 64B stride = 256B period), different tag.
    EXPECT_EQ(cache.find(0x1000 + 4 * 64), nullptr);
}

TEST(Cache, OffsetWithinBlockHits)
{
    Cache cache = smallCache();
    cache.allocate(0x1000, nullptr);
    EXPECT_NE(cache.find(0x103F), nullptr);
    EXPECT_EQ(cache.find(0x1040), nullptr);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache cache = smallCache();
    // Three blocks mapping to the same set (stride 256B).
    cache.allocate(0x0, nullptr);
    cache.allocate(0x100, nullptr);
    cache.find(0x0); // touch to make 0x100 the LRU
    Cache::Victim victim;
    cache.allocate(0x200, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x100u);
    EXPECT_NE(cache.find(0x0), nullptr);
    EXPECT_EQ(cache.find(0x100), nullptr);
}

TEST(Cache, VictimCarriesDataAndDirty)
{
    Cache cache = smallCache();
    Cache::Block *blk = cache.allocate(0x0, nullptr);
    blk->dirty = true;
    std::memset(blk->data, 0xab, kBlockBytes);
    cache.allocate(0x100, nullptr);
    Cache::Victim victim;
    cache.allocate(0x200, &victim); // evicts 0x0 (LRU)
    ASSERT_TRUE(victim.valid);
    EXPECT_TRUE(victim.dirty);
    EXPECT_EQ(victim.addr, 0x0u);
    EXPECT_EQ(victim.data[0], 0xab);
}

TEST(Cache, AllocateExistingBlockKeepsState)
{
    Cache cache = smallCache();
    Cache::Block *blk = cache.allocate(0x0, nullptr);
    blk->dirty = true;
    blk->data[0] = 42;
    Cache::Victim victim;
    Cache::Block *again = cache.allocate(0x0, &victim);
    EXPECT_EQ(again, blk);
    EXPECT_FALSE(victim.valid);
    EXPECT_TRUE(again->dirty);
    EXPECT_EQ(again->data[0], 42);
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache cache = smallCache();
    cache.allocate(0x1000, nullptr);
    cache.invalidate(0x1000);
    EXPECT_EQ(cache.find(0x1000), nullptr);
}

TEST(Cache, InvalidateAbsentIsNoop)
{
    Cache cache = smallCache();
    cache.invalidate(0x9000);
    EXPECT_EQ(cache.find(0x9000), nullptr);
}

TEST(Cache, PeekDoesNotTouchLru)
{
    Cache cache = smallCache();
    cache.allocate(0x0, nullptr);
    cache.allocate(0x100, nullptr);
    cache.peek(0x0); // must NOT refresh 0x0
    Cache::Victim victim;
    cache.allocate(0x200, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x0u);
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache cache = smallCache();
    cache.allocate(0x0, nullptr);
    cache.allocate(0x40, nullptr);
    cache.flushAll();
    EXPECT_EQ(cache.find(0x0), nullptr);
    EXPECT_EQ(cache.find(0x40), nullptr);
}

TEST(Cache, ForEachBlockVisitsValidOnly)
{
    Cache cache = smallCache();
    cache.allocate(0x0, nullptr);
    cache.allocate(0x40, nullptr);
    unsigned count = 0;
    cache.forEachBlock([&](Cache::Block &) { ++count; });
    EXPECT_EQ(count, 2u);
}

TEST(Cache, GeometryFromTable2)
{
    Cache l1("L1D", CacheConfig{32 * 1024, 8, 2});
    EXPECT_EQ(l1.numSets(), 64u);
    EXPECT_EQ(l1.ways(), 8u);
    EXPECT_EQ(l1.latency(), 2u);
    Cache l3("L3", CacheConfig{2 * 1024 * 1024, 16, 20});
    EXPECT_EQ(l3.numSets(), 2048u);
}
