/**
 * @file
 * Unit tests: the SP hardware components -- Bloom filter, SSB, BLT,
 * checkpoint buffer (paper Section 4.2, Tables 2-3).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/blt.hh"
#include "core/bloom_filter.hh"
#include "core/checkpoint.hh"
#include "core/ssb.hh"
#include "sim/rng.hh"

using namespace sp;

// --- Bloom filter ---------------------------------------------------------

TEST(BloomFilter, NoFalseNegatives)
{
    BloomFilter bloom(512, 2);
    Rng rng(3);
    std::vector<Addr> inserted;
    for (int i = 0; i < 200; ++i) {
        Addr a = rng.next() & ~Addr(63);
        bloom.insert(a);
        inserted.push_back(a);
    }
    for (Addr a : inserted)
        EXPECT_TRUE(bloom.maybeContains(a));
}

TEST(BloomFilter, BlockGranularity)
{
    BloomFilter bloom(512, 2);
    bloom.insert(0x10007); // anywhere in the block
    EXPECT_TRUE(bloom.maybeContains(0x10038)); // same block
}

TEST(BloomFilter, EmptyFilterRejectsEverything)
{
    BloomFilter bloom(512, 2);
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(bloom.maybeContains(rng.next() & ~Addr(63)));
}

TEST(BloomFilter, ResetClears)
{
    BloomFilter bloom(512, 2);
    bloom.insert(0x4000);
    EXPECT_GT(bloom.popcount(), 0u);
    bloom.reset();
    EXPECT_EQ(bloom.popcount(), 0u);
    EXPECT_FALSE(bloom.maybeContains(0x4000));
}

TEST(BloomFilter, FalsePositiveRateReasonable)
{
    // 4096 bits, 2 hashes, 64 inserts: analytic FP rate ~ (1-e^-.03)^2,
    // well under 1%. Allow generous slack.
    BloomFilter bloom(512, 2);
    Rng rng(7);
    for (int i = 0; i < 64; ++i)
        bloom.insert(rng.next() & ~Addr(63));
    int fp = 0;
    const int probes = 10000;
    for (int i = 0; i < probes; ++i)
        fp += bloom.maybeContains((rng.next() | (1ULL << 62)) & ~Addr(63));
    EXPECT_LT(fp, probes / 50);
}

TEST(BloomFilter, SizeBits)
{
    EXPECT_EQ(BloomFilter(512, 2).sizeBits(), 4096u);
    EXPECT_EQ(BloomFilter(64, 1).sizeBits(), 512u);
}

/**
 * Property test (paper SSB lookup correctness): over randomized
 * SSB-style insert/query workloads -- stores clustered in a heap-like
 * region the way speculative epochs produce them -- the filter never
 * false-negatives, and its false-positive rate stays under the analytic
 * bound (1 - e^(-kn/m))^k with generous slack for hash imperfection.
 */
TEST(BloomFilter, PropertyRandomizedSsbWorkloads)
{
    struct Shape
    {
        uint64_t seed;
        unsigned inserts; // distinct-ish stores in one epoch
    };
    for (const Shape &shape :
         {Shape{11, 16}, Shape{12, 48}, Shape{13, 96}, Shape{14, 160},
          Shape{15, 256}}) {
        BloomFilter bloom(512, 2);
        const unsigned m = bloom.sizeBits();
        const unsigned k = 2;
        Rng rng(shape.seed);

        // Insert phase: block addresses drawn from a 16 MiB heap-like
        // window, with some same-block repeats (write locality), as an
        // epoch's speculative stores would be.
        std::set<Addr> present;
        for (unsigned i = 0; i < shape.inserts; ++i) {
            Addr a = (0x4000'0000ull + rng.nextBounded(16u << 20)) &
                ~Addr(63);
            bloom.insert(a);
            present.insert(a);
            if (rng.nextBool(0.25)) { // repeat hit on the same block
                bloom.insert(a + rng.nextBounded(64));
            }
        }

        // No false negatives: every inserted block (at any offset) must
        // still answer "maybe".
        for (Addr a : present) {
            EXPECT_TRUE(bloom.maybeContains(a));
            EXPECT_TRUE(bloom.maybeContains(a + 63));
        }

        // Query phase: speculative loads over the same window; count
        // false positives only on blocks genuinely absent.
        unsigned fp = 0, negatives = 0;
        const unsigned kQueries = 20000;
        for (unsigned i = 0; i < kQueries; ++i) {
            Addr a = (0x4000'0000ull + rng.nextBounded(16u << 20)) &
                ~Addr(63);
            if (present.count(a))
                continue;
            ++negatives;
            fp += bloom.maybeContains(a);
        }
        ASSERT_GT(negatives, kQueries / 2u);

        double n = static_cast<double>(present.size());
        double analytic =
            std::pow(1.0 - std::exp(-double(k) * n / m), double(k));
        double bound = std::max(3.0 * analytic, 0.003);
        double rate = static_cast<double>(fp) / negatives;
        EXPECT_LT(rate, bound)
            << "seed " << shape.seed << ", " << present.size()
            << " blocks: FP rate " << rate << " vs bound " << bound;
    }
}

// --- SSB --------------------------------------------------------------------

namespace
{

SsbEntry
storeEntry(Addr addr, uint8_t size, uint64_t epoch = 1)
{
    SsbEntry e;
    e.type = SsbEntryType::kStore;
    e.addr = addr;
    e.size = size;
    e.epoch = epoch;
    return e;
}

} // namespace

TEST(Ssb, FifoOrder)
{
    SpeculativeStoreBuffer ssb(8);
    for (int i = 0; i < 5; ++i)
        ssb.push(storeEntry(0x1000 + i * 8, 8));
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(ssb.front().addr, 0x1000u + i * 8);
        ssb.pop();
    }
    EXPECT_TRUE(ssb.empty());
}

TEST(Ssb, CapacityEnforced)
{
    SpeculativeStoreBuffer ssb(2);
    ssb.push(storeEntry(0, 8));
    EXPECT_FALSE(ssb.full());
    ssb.push(storeEntry(8, 8));
    EXPECT_TRUE(ssb.full());
    EXPECT_DEATH(ssb.push(storeEntry(16, 8)), "overflow");
}

TEST(Ssb, SearchFindsOverlap)
{
    SpeculativeStoreBuffer ssb(16);
    ssb.push(storeEntry(0x1000, 8));
    EXPECT_TRUE(ssb.searchForLoad(0x1000, 8));
    EXPECT_TRUE(ssb.searchForLoad(0x1004, 2)); // partial overlap
    EXPECT_TRUE(ssb.searchForLoad(0x0FFC, 8)); // straddles the start
    EXPECT_FALSE(ssb.searchForLoad(0x1008, 8));
    EXPECT_FALSE(ssb.searchForLoad(0x0FF0, 8));
}

TEST(Ssb, SearchIgnoresNonStores)
{
    SpeculativeStoreBuffer ssb(16);
    SsbEntry clwb;
    clwb.type = SsbEntryType::kClwb;
    clwb.addr = 0x1000;
    clwb.size = 64;
    ssb.push(clwb);
    EXPECT_FALSE(ssb.searchForLoad(0x1000, 8));
}

TEST(Ssb, HasEntriesForEpoch)
{
    SpeculativeStoreBuffer ssb(16);
    ssb.push(storeEntry(0, 8, 1));
    ssb.push(storeEntry(8, 8, 2));
    EXPECT_TRUE(ssb.hasEntriesFor(1));
    EXPECT_TRUE(ssb.hasEntriesFor(2));
    ssb.pop();
    EXPECT_FALSE(ssb.hasEntriesFor(1));
    EXPECT_TRUE(ssb.hasEntriesFor(2));
}

TEST(Ssb, ClearEmpties)
{
    SpeculativeStoreBuffer ssb(16);
    ssb.push(storeEntry(0, 8));
    ssb.clear();
    EXPECT_TRUE(ssb.empty());
}

/** Table 3: SSB size -> access latency. */
class SsbLatency : public ::testing::TestWithParam<std::pair<unsigned,
                                                             unsigned>>
{
};

TEST_P(SsbLatency, MatchesTable3)
{
    auto [entries, latency] = GetParam();
    EXPECT_EQ(ssbLatencyFor(entries), latency);
    EXPECT_EQ(SpeculativeStoreBuffer(entries).latency(), latency);
}

INSTANTIATE_TEST_SUITE_P(
    Table3, SsbLatency,
    ::testing::Values(std::make_pair(32u, 2u), std::make_pair(64u, 3u),
                      std::make_pair(128u, 4u), std::make_pair(256u, 5u),
                      std::make_pair(512u, 7u),
                      std::make_pair(1024u, 10u)));

// --- BLT --------------------------------------------------------------------

TEST(Blt, RecordAndProbeBlockAligned)
{
    BlockLookupTable blt;
    blt.record(0x1234);
    EXPECT_TRUE(blt.probe(0x1200)); // same block
    EXPECT_TRUE(blt.probe(0x123F));
    EXPECT_FALSE(blt.probe(0x1240));
}

TEST(Blt, ClearForgets)
{
    BlockLookupTable blt;
    blt.record(0x1000);
    blt.clear();
    EXPECT_FALSE(blt.probe(0x1000));
    EXPECT_EQ(blt.size(), 0u);
}

TEST(Blt, SizeCountsDistinctBlocks)
{
    BlockLookupTable blt;
    blt.record(0x1000);
    blt.record(0x1010); // same block
    blt.record(0x2000);
    EXPECT_EQ(blt.size(), 2u);
}

// --- Checkpoint buffer ------------------------------------------------------

TEST(Checkpoints, AllocateUntilFull)
{
    CheckpointBuffer cps(4);
    EXPECT_TRUE(cps.available());
    unsigned a = cps.allocate(10);
    unsigned b = cps.allocate(20);
    unsigned c = cps.allocate(30);
    unsigned d = cps.allocate(40);
    EXPECT_NE(a, CheckpointBuffer::kInvalid);
    EXPECT_FALSE(cps.available());
    EXPECT_EQ(cps.allocate(50), CheckpointBuffer::kInvalid);
    EXPECT_EQ(cps.cursor(a), 10u);
    EXPECT_EQ(cps.cursor(d), 40u);
    (void)b;
    (void)c;
}

TEST(Checkpoints, FreeMakesRoom)
{
    CheckpointBuffer cps(2);
    unsigned a = cps.allocate(1);
    cps.allocate(2);
    cps.free(a);
    EXPECT_TRUE(cps.available());
    unsigned c = cps.allocate(3);
    EXPECT_NE(c, CheckpointBuffer::kInvalid);
    EXPECT_EQ(cps.cursor(c), 3u);
}

TEST(Checkpoints, DoubleFreeDies)
{
    CheckpointBuffer cps(2);
    unsigned a = cps.allocate(1);
    cps.free(a);
    EXPECT_DEATH(cps.free(a), "invalid checkpoint");
}

TEST(Checkpoints, ResetFreesEverything)
{
    CheckpointBuffer cps(3);
    cps.allocate(1);
    cps.allocate(2);
    cps.reset();
    EXPECT_EQ(cps.inUse(), 0u);
    EXPECT_TRUE(cps.available());
}
