/**
 * @file
 * Unit tests: the power-of-two histogram used for latency distributions
 * -- bucketing, the percentileUpperBound edge contract, merge as exact
 * concatenation, the shared histogramJson renderer, and the sweep-level
 * TraceSummary aggregation built on merge.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "sim/histogram.hh"
#include "sim/trace.hh"

using namespace sp;

TEST(Histogram, EmptyIsZeroed)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentileUpperBound(0.95), 0u);
}

TEST(Histogram, BucketsByPowerOfTwo)
{
    Histogram h;
    h.record(0);   // bucket 0
    h.record(1);   // [1,2) -> bucket 1
    h.record(3);   // [2,4) -> bucket 2
    h.record(4);   // [4,8) -> bucket 3
    h.record(7);   // [4,8)
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, MinMaxMean)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentileBoundsCoverSamples)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<uint64_t>(i));
    // p50 of 1..100 is <= 64 (the bucket boundary above 50).
    EXPECT_GE(h.percentileUpperBound(0.5), 50u);
    EXPECT_LE(h.percentileUpperBound(0.5), 64u);
    EXPECT_GE(h.percentileUpperBound(1.0), 100u);
}

TEST(Histogram, HugeValuesSaturateLastBucket)
{
    Histogram h;
    h.record(~uint64_t(0));
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, PercentileOfEmptyIsZeroForEveryFraction)
{
    Histogram h;
    for (double f : {0.0, 0.001, 0.5, 0.999, 1.0})
        EXPECT_EQ(h.percentileUpperBound(f), 0u) << f;
}

TEST(Histogram, PercentileOfSingleSampleIsTheSample)
{
    for (uint64_t v : {uint64_t(0), uint64_t(1), uint64_t(37),
                       uint64_t(1) << 40}) {
        Histogram h;
        h.record(v);
        for (double f : {0.0, 0.001, 0.5, 0.999, 1.0})
            EXPECT_EQ(h.percentileUpperBound(f), v) << v << " @ " << f;
    }
}

TEST(Histogram, PercentileExtremesAreMinAndMax)
{
    Histogram h;
    for (uint64_t v : {3u, 40u, 500u, 6000u})
        h.record(v);
    EXPECT_EQ(h.percentileUpperBound(0.0), 3u);
    EXPECT_EQ(h.percentileUpperBound(-0.5), 3u);
    EXPECT_EQ(h.percentileUpperBound(1.0), 6000u);
    EXPECT_EQ(h.percentileUpperBound(2.0), 6000u);
}

// A sample in the saturating overflow bucket has no power-of-two upper
// boundary; the contract is to report the exact recorded max.
TEST(Histogram, PercentileInOverflowBucketReportsExactMax)
{
    Histogram h;
    h.record(5);
    uint64_t huge = ~uint64_t(0) - 3;
    h.record(huge);
    EXPECT_EQ(h.percentileUpperBound(1.0), huge);
    EXPECT_EQ(h.percentileUpperBound(0.999), huge);
    EXPECT_EQ(h.percentileUpperBound(0.25), 8u);
}

// Bounds never exceed the recorded max even when the bucket boundary
// does (96 samples land in [64,128) but the max is 100).
TEST(Histogram, PercentileBoundClampsToRecordedMax)
{
    Histogram h;
    for (uint64_t v = 65; v <= 100; ++v)
        h.record(v);
    EXPECT_EQ(h.percentileUpperBound(0.5), 100u);
}

TEST(Histogram, MergeEqualsConcatenation)
{
    // Bucket-aligned values: every sample is a power of two, so the
    // merged histogram is bucket-for-bucket the concatenated one and
    // all derived statistics agree exactly.
    std::vector<uint64_t> first = {1, 4, 16, 16, 64};
    std::vector<uint64_t> second = {2, 4, 256, 1024};
    Histogram a, b, all;
    for (uint64_t v : first) {
        a.record(v);
        all.record(v);
    }
    for (uint64_t v : second) {
        b.record(v);
        all.record(v);
    }
    Histogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.samples(), all.samples());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    EXPECT_DOUBLE_EQ(merged.mean(), all.mean());
    for (unsigned i = 0; i < Histogram::kBuckets; ++i)
        EXPECT_EQ(merged.bucket(i), all.bucket(i)) << "bucket " << i;
    for (double f : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_EQ(merged.percentileUpperBound(f),
                  all.percentileUpperBound(f))
            << f;
    }
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays)
{
    Histogram a;
    for (uint64_t v : {7u, 80u, 900u})
        a.record(v);
    std::string before = [&] {
        std::ostringstream os;
        a.print(os);
        return os.str();
    }();

    Histogram withEmpty = a;
    withEmpty.merge(Histogram{});
    std::ostringstream osA;
    withEmpty.print(osA);
    EXPECT_EQ(osA.str(), before);
    EXPECT_EQ(withEmpty.min(), a.min());
    EXPECT_EQ(withEmpty.max(), a.max());

    Histogram emptyWith;
    emptyWith.merge(a);
    std::ostringstream osB;
    emptyWith.print(osB);
    EXPECT_EQ(osB.str(), before);
    EXPECT_EQ(emptyWith.samples(), a.samples());
    EXPECT_EQ(emptyWith.min(), a.min());
    EXPECT_EQ(emptyWith.max(), a.max());
}

TEST(Histogram, JsonHasTailFieldsAndParses)
{
    Histogram h;
    for (uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    std::ostringstream os;
    histogramJson(os, "lat", h);
    std::string json = "{" + os.str() + "}";
    std::string error;
    EXPECT_TRUE(jsonIsValid(json, &error)) << error << ": " << json;
    EXPECT_NE(json.find("\"p999\":"), std::string::npos);
    EXPECT_NE(json.find("\"n\":1000"), std::string::npos);
}

// The sweep summary's histograms are built with merge; across a traced
// sweep they must carry exactly the union of the per-run samples.
TEST(Histogram, SweepTraceAggregationConcatenatesRuns)
{
    std::vector<RunConfig> grid;
    for (WorkloadKind kind :
         {WorkloadKind::kBTree, WorkloadKind::kHashMap}) {
        RunConfig cfg;
        cfg.kind = kind;
        cfg.params.seed = 42;
        cfg.params.initOps = 200;
        cfg.params.simOps = 25;
        cfg.params.mode = PersistMode::kLogPSf;
        cfg.trace.categories = kTraceAll;
        grid.push_back(cfg);
    }
    std::vector<SweepRunResult> results = SweepEngine().run(grid);
    SweepSummary summary = summarizeSweep(results);
    ASSERT_EQ(summary.tracedRuns, grid.size());
    uint64_t fenceSamples = 0, epochSamples = 0;
    for (const SweepRunResult &r : results) {
        fenceSamples += r.run.trace.fenceStall.samples();
        epochSamples += r.run.trace.epochDuration.samples();
    }
    EXPECT_EQ(summary.fenceStall.samples(), fenceSamples);
    EXPECT_EQ(summary.epochDuration.samples(), epochSamples);
    EXPECT_GT(fenceSamples, 0u);
}

TEST(Histogram, PrintShowsSummary)
{
    Histogram h;
    h.record(100);
    h.record(300);
    std::ostringstream os;
    h.print(os, "> ");
    std::string out = os.str();
    EXPECT_NE(out.find("samples 2"), std::string::npos);
    EXPECT_NE(out.find("min 100"), std::string::npos);
    EXPECT_NE(out.find("max 300"), std::string::npos);
}
