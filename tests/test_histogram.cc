/**
 * @file
 * Unit tests: the power-of-two histogram used for latency distributions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/histogram.hh"

using namespace sp;

TEST(Histogram, EmptyIsZeroed)
{
    Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentileUpperBound(0.95), 0u);
}

TEST(Histogram, BucketsByPowerOfTwo)
{
    Histogram h;
    h.record(0);   // bucket 0
    h.record(1);   // [1,2) -> bucket 1
    h.record(3);   // [2,4) -> bucket 2
    h.record(4);   // [4,8) -> bucket 3
    h.record(7);   // [4,8)
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Histogram, MinMaxMean)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentileBoundsCoverSamples)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<uint64_t>(i));
    // p50 of 1..100 is <= 64 (the bucket boundary above 50).
    EXPECT_GE(h.percentileUpperBound(0.5), 50u);
    EXPECT_LE(h.percentileUpperBound(0.5), 64u);
    EXPECT_GE(h.percentileUpperBound(1.0), 100u);
}

TEST(Histogram, HugeValuesSaturateLastBucket)
{
    Histogram h;
    h.record(~uint64_t(0));
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST(Histogram, PrintShowsSummary)
{
    Histogram h;
    h.record(100);
    h.record(300);
    std::ostringstream os;
    h.print(os, "> ");
    std::string out = os.str();
    EXPECT_NE(out.find("samples 2"), std::string::npos);
    EXPECT_NE(out.find("min 100"), std::string::npos);
    EXPECT_NE(out.find("max 300"), std::string::npos);
}
