/**
 * @file
 * Unit tests: the out-of-order pipeline model -- widths, dependences,
 * memory latency, store buffer, fence semantics (without speculation).
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"

using namespace sp;

namespace
{

struct Machine
{
    SimConfig cfg;
    MemImage durable;
    Stats stats;

    explicit Machine(bool sp = false) { cfg.sp.enabled = sp; }

    Tick
    run(std::vector<MicroOp> ops)
    {
        TraceProgram prog(std::move(ops));
        MemSystem mc(cfg.mem, durable);
        CacheHierarchy caches(cfg, mc);
        mc.setStats(&stats);
        caches.setStats(&stats);
        OooCore core(cfg, prog, caches, mc, stats);
        core.run();
        return stats.cycles;
    }
};

constexpr Addr kA = 0x10000000;

} // namespace

TEST(Pipeline, IndependentAluRunsAtIssueWidth)
{
    Machine m;
    std::vector<MicroOp> ops(400, MicroOp::alu(1));
    Tick cycles = m.run(ops);
    // 400 independent 1-cycle ops, 4-wide: ~100 cycles + pipeline fill.
    EXPECT_LE(cycles, 120u);
    EXPECT_GE(cycles, 100u);
    EXPECT_EQ(m.stats.instructions, 400u);
}

TEST(Pipeline, RleAluExpandsToInstructions)
{
    Machine m;
    Tick cycles = m.run({MicroOp::alu(1000)});
    EXPECT_EQ(m.stats.instructions, 1000u);
    EXPECT_LE(cycles, 300u); // bandwidth-bound at 4/cycle
}

TEST(Pipeline, ChainedAluSerializes)
{
    Machine m;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(MicroOp::aluChain(1, i == 0 ? 0 : 1));
    Tick cycles = m.run(ops);
    EXPECT_GE(cycles, 100u);
    EXPECT_LE(cycles, 130u);
}

TEST(Pipeline, AluChainRepeatTakesRepeatCycles)
{
    Machine m;
    Tick cycles = m.run({MicroOp::aluChain(500)});
    EXPECT_GE(cycles, 500u);
    EXPECT_EQ(m.stats.instructions, 500u);
}

TEST(Pipeline, DependentLoadsChainThroughCache)
{
    Machine m;
    // 10 L1-resident loads, each dependent on the previous: >= 10 x 2.
    std::vector<MicroOp> warm, ops;
    for (int i = 0; i < 10; ++i)
        warm.push_back(MicroOp::load(kA + i * 8, 8));
    for (int i = 0; i < 10; ++i)
        ops.push_back(MicroOp::load(kA + i * 8, 8, i == 0 ? 0 : 1));
    for (auto &op : ops)
        warm.push_back(op);
    Tick cycles = m.run(warm);
    EXPECT_GE(cycles, 20u);
}

TEST(Pipeline, ColdLoadPaysNvmmLatency)
{
    Machine m;
    Tick cycles = m.run({MicroOp::load(kA, 8)});
    EXPECT_GE(cycles, static_cast<Tick>(m.cfg.mem.nvmmReadCycles));
    EXPECT_EQ(m.stats.nvmmReads, 1u);
}

TEST(Pipeline, StoresDrainThroughStoreBuffer)
{
    Machine m;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back(MicroOp::store(kA + i * 8, i, 8));
    m.run(ops);
    EXPECT_EQ(m.stats.stores, 10u);
    // All to one block: one dirty block in the hierarchy, no WPQ traffic.
    EXPECT_EQ(m.stats.wpqInserts, 0u);
}

TEST(Pipeline, SfenceAloneIsCheap)
{
    Machine m;
    Tick with = m.run({MicroOp::alu(100), MicroOp::sfence(),
                       MicroOp::alu(100)});
    Machine m2;
    Tick without = m2.run({MicroOp::alu(100), MicroOp::alu(100)});
    EXPECT_LE(with, without + 20);
}

TEST(Pipeline, SfenceWaitsForStoreBuffer)
{
    // Store to a cold block: the fence cannot retire until the store
    // buffer drains (which needs the fill).
    Machine m;
    Tick cycles =
        m.run({MicroOp::store(kA, 1, 8), MicroOp::sfence()});
    EXPECT_GE(cycles, static_cast<Tick>(m.cfg.mem.nvmmReadCycles));
}

TEST(Pipeline, PersistBarrierCostsNvmmWrite)
{
    Machine m;
    Tick cycles = m.run({
        MicroOp::store(kA, 1, 8),
        MicroOp::clwb(kA),
        MicroOp::sfence(),
        MicroOp::pcommit(),
        MicroOp::sfence(),
    });
    EXPECT_GE(cycles, static_cast<Tick>(m.cfg.mem.nvmmWriteCycles));
    EXPECT_EQ(m.stats.nvmmWrites, 1u);
    EXPECT_GT(m.stats.fenceStallCycles, 0u);
    // And the data really is durable.
    EXPECT_EQ(m.durable.readInt(kA, 8), 1u);
}

TEST(Pipeline, ClwbOrderedBehindSameBlockStore)
{
    // Regression: clwb must not write back a block whose older store is
    // still sitting in the store buffer.
    Machine m;
    m.run({
        MicroOp::store(kA, 0xCAFE, 8),
        MicroOp::clwb(kA),
        MicroOp::sfence(),
        MicroOp::pcommit(),
        MicroOp::sfence(),
    });
    EXPECT_EQ(m.durable.readInt(kA, 8), 0xCAFEu);
}

TEST(Pipeline, PcommitAloneDoesNotStall)
{
    Machine with, without;
    std::vector<MicroOp> base = {MicroOp::store(kA, 1, 8),
                                 MicroOp::clwb(kA)};
    std::vector<MicroOp> ops = base;
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::alu(200));
    std::vector<MicroOp> ops2 = base;
    ops2.push_back(MicroOp::alu(200));
    Tick t1 = with.run(ops);
    Tick t2 = without.run(ops2);
    EXPECT_LE(t1, t2 + 10);
}

TEST(Pipeline, PcommitsOverlapWithoutFences)
{
    // Log+P style: many clwb+pcommit pairs, no sfences -> flushes overlap.
    Machine m;
    std::vector<MicroOp> ops;
    for (int i = 0; i < 8; ++i) {
        ops.push_back(MicroOp::store(kA + i * 4096, 1, 8));
        ops.push_back(MicroOp::clwb(kA + i * 4096));
        ops.push_back(MicroOp::pcommit());
    }
    m.run(ops);
    EXPECT_GE(m.stats.maxInflightPcommits, 2u);
    EXPECT_EQ(m.stats.pcommits, 8u);
}

TEST(Pipeline, FetchQueueStallsWhenRetirementBlocked)
{
    Machine m;
    std::vector<MicroOp> ops = {
        MicroOp::store(kA, 1, 8),
        MicroOp::clwb(kA),
        MicroOp::sfence(),
        MicroOp::pcommit(),
        MicroOp::sfence(),
    };
    for (int i = 0; i < 2000; ++i)
        ops.push_back(MicroOp::alu(1));
    m.run(ops);
    EXPECT_GT(m.stats.fetchQueueStallCycles, 0u);
}

TEST(Pipeline, MfenceBehavesLikeSfenceForPersists)
{
    Machine m;
    Tick cycles = m.run({
        MicroOp::store(kA, 1, 8),
        MicroOp::clwb(kA),
        MicroOp::mfence(),
        MicroOp::pcommit(),
        MicroOp::mfence(),
    });
    EXPECT_GE(cycles, static_cast<Tick>(m.cfg.mem.nvmmWriteCycles));
    EXPECT_EQ(m.durable.readInt(kA, 8), 1u);
}

TEST(Pipeline, XchgActsAsFenceAndStore)
{
    Machine m;
    m.run({
        MicroOp::store(kA, 1, 8),
        MicroOp::clwb(kA),
        MicroOp::sfence(),
        MicroOp::pcommit(),
        MicroOp::xchg(kA + 8, 7),
    });
    // The xchg waited for the pcommit, then stored.
    EXPECT_EQ(m.stats.stores, 2u);
    EXPECT_EQ(m.durable.readInt(kA, 8), 1u);
}

TEST(Pipeline, InstructionCountsExact)
{
    Machine m;
    m.run({MicroOp::alu(10), MicroOp::load(kA, 8),
           MicroOp::store(kA, 1, 8), MicroOp::clwb(kA),
           MicroOp::pcommit(), MicroOp::sfence(), MicroOp::aluChain(5)});
    EXPECT_EQ(m.stats.instructions, 10u + 1 + 1 + 1 + 1 + 1 + 5);
    EXPECT_EQ(m.stats.loads, 1u);
    EXPECT_EQ(m.stats.stores, 1u);
    EXPECT_EQ(m.stats.cacheWritebackOps, 1u);
    EXPECT_EQ(m.stats.pcommits, 1u);
    EXPECT_EQ(m.stats.fences, 1u);
}

TEST(Pipeline, RunUntilStopsEarly)
{
    SimConfig cfg;
    MemImage durable;
    Stats stats;
    std::vector<MicroOp> ops(10000, MicroOp::alu(1));
    TraceProgram prog(ops);
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    OooCore core(cfg, prog, caches, mc, stats);
    EXPECT_FALSE(core.runUntil(100));
    EXPECT_GE(core.now(), 100u);
    EXPECT_LT(stats.instructions, 10000u);
    EXPECT_TRUE(core.runUntil(kTickNever));
    EXPECT_EQ(stats.instructions, 10000u);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    auto build = [] {
        std::vector<MicroOp> ops;
        for (int i = 0; i < 50; ++i) {
            ops.push_back(MicroOp::store(kA + i * 64, i, 8));
            ops.push_back(MicroOp::clwb(kA + i * 64));
            if (i % 5 == 0) {
                ops.push_back(MicroOp::sfence());
                ops.push_back(MicroOp::pcommit());
                ops.push_back(MicroOp::sfence());
            }
        }
        return ops;
    };
    Machine a, b;
    EXPECT_EQ(a.run(build()), b.run(build()));
}
