/**
 * @file
 * The whole-simulator snapshot contract and the parallel-in-time paths
 * built on it (harness/machine.hh, harness/slice.hh).
 *
 *  - Round-trip bit-identity: for every workload (the seven Table-1
 *    kinds plus the incremental-logging AVL variant), SP on and off,
 *    oracle and event-skip clocks, and crash / conflict / media-fault
 *    cells: snapshot-at-T, serialize to bytes, deserialize, restore
 *    into a fresh deferred-setup machine, run to the end -- the Stats
 *    CSV, trace summary, audit report, cycle account, durable image
 *    hash, and outcome must be byte-identical to the uninterrupted run.
 *  - Rejection: version skew, config mismatch, and trailing bytes must
 *    throw SnapshotError, never read garbage.
 *  - Slice-parallel replay: runSlicedExperiment must reproduce the
 *    serial fingerprint exactly, for any worker count.
 *  - Sampled mode: deterministic across repeats, and a sane estimate.
 *
 * A failure here means some component hid timing-relevant state from
 * its snapshot visitor -- extend the visitor, do not loosen the test.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/machine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/slice.hh"
#include "sim/snapshot.hh"
#include "workloads/factory.hh"

using namespace sp;

namespace
{

struct Fingerprint
{
    std::string stats;
    std::string trace;
    std::string audit;
    std::string account;
    uint64_t imageHash = 0;
    bool completed = false;
    RunOutcome outcome = RunOutcome::kOk;
    uint64_t generation = 0;

    bool operator==(const Fingerprint &o) const = default;
};

Fingerprint
fingerprint(const RunResult &r)
{
    return {statsCsvRow("", r.stats),
            r.trace.enabled ? r.trace.toJson() : std::string(),
            r.audit.enabled ? r.audit.toJson() : std::string(),
            r.account.enabled ? r.account.toJson() : std::string(),
            r.durable.hash(),
            r.completed,
            r.outcome,
            r.functionalGeneration};
}

struct Cell
{
    RunConfig cfg;
    Tick crashAtCycle = 0;
    std::string name;
};

/** The seven Table-1 workloads plus the incremental-logging variant. */
std::vector<WorkloadKind>
snapshotKinds()
{
    std::vector<WorkloadKind> kinds = allWorkloadKinds();
    kinds.push_back(WorkloadKind::kAvlTreeIncremental);
    return kinds;
}

RunConfig
smallConfig(WorkloadKind kind, bool sp)
{
    RunConfig cfg;
    cfg.kind = kind;
    cfg.params = defaultParams(kind);
    cfg.params.seed = 42;
    cfg.params.initOps = 200;
    cfg.params.simOps = 60;
    cfg.params.mode = PersistMode::kLogPSf;
    cfg.sim.sp.enabled = sp;
    return cfg;
}

/** Every observer on: the widest possible snapshot payload. */
void
enableObservers(RunConfig &cfg)
{
    cfg.trace.categories = kTraceAll;
    cfg.audit.enabled = true;
    cfg.account.enabled = true;
}

std::vector<Cell>
roundTripGrid()
{
    std::vector<Cell> cells;
    for (WorkloadKind kind : snapshotKinds()) {
        for (bool sp : {false, true}) {
            Cell cell;
            cell.cfg = smallConfig(kind, sp);
            enableObservers(cell.cfg);
            cell.name = std::string(workloadKindName(kind)) +
                (sp ? "+SP" : "");
            cells.push_back(cell);
        }
    }

    // The clock-skew cell: the one-cycle-at-a-time oracle loop walks a
    // different (denser) step trajectory than event skip.
    {
        Cell cell;
        cell.cfg = smallConfig(WorkloadKind::kBTree, true);
        cell.cfg.sim.eventSkip = false;
        enableObservers(cell.cfg);
        cell.name = "BT+SP oracle-clock";
        cells.push_back(cell);
    }
    // Adversarial conflicts: the injector's Rng and probe schedule ride
    // the snapshot.
    {
        Cell cell;
        cell.cfg = smallConfig(WorkloadKind::kLinkedList, true);
        cell.cfg.sim.fault.conflict.enabled = true;
        cell.cfg.sim.fault.conflict.period = 2000;
        cell.cfg.sim.fault.conflict.seed = 7;
        cell.cfg.sim.fault.watchdog.enabled = true;
        enableObservers(cell.cfg);
        cell.name = "LL+SP conflicts";
        cells.push_back(cell);
    }
    // A crash cell: the run never completes; torn writes + NVMM write
    // jitter depend on the exact WPQ contents at the crash tick.
    {
        Cell cell;
        cell.cfg = smallConfig(WorkloadKind::kHashMap, true);
        cell.cfg.sim.fault.crash.tornWrites = true;
        cell.cfg.sim.fault.crash.pcommitJitterCycles = 32;
        cell.cfg.sim.fault.crash.seed = 42;
        cell.crashAtCycle = 120000;
        cell.name = "HM+SP crash";
        cells.push_back(cell);
    }
    // Media faults on top of the crash image.
    {
        Cell cell;
        cell.cfg = smallConfig(WorkloadKind::kLinkedList, true);
        cell.cfg.params.checksums = true;
        cell.cfg.sim.fault.media.enabled = true;
        cell.cfg.sim.fault.media.faults = 4;
        cell.cfg.sim.fault.media.seed = 42;
        cell.crashAtCycle = 100000;
        cell.name = "LL+SP crash+media";
        cells.push_back(cell);
    }
    return cells;
}

/** Serial run via the Machine API (identical to runExperiment). */
RunResult
serialRun(const Cell &cell)
{
    return runExperiment(cell.cfg, cell.crashAtCycle);
}

/**
 * The same run split at `snapAt`: run a producer machine to the tick,
 * snapshot, push the snapshot through the byte container, restore into
 * a fresh deferred-setup machine, and finish there.
 */
RunResult
roundTripRun(const Cell &cell, Tick snapAt)
{
    Tracer *tracer = nullptr;
    Machine producer(cell.cfg, tracer);
    producer.runUntil(snapAt);
    std::vector<uint8_t> bytes = producer.takeSnapshot().serialize();
    SimSnapshot snap = SimSnapshot::deserialize(bytes.data(), bytes.size());

    Machine resumed(cell.cfg, tracer, /*deferSetup=*/true);
    resumed.restoreSnapshot(snap);
    resumed.runUntil(cell.crashAtCycle != 0 ? cell.crashAtCycle
                                            : kTickNever);
    return resumed.finish(cell.crashAtCycle);
}

} // namespace

TEST(Snapshot, RoundTripBitIdentity)
{
    for (const Cell &cell : roundTripGrid()) {
        SCOPED_TRACE(cell.name);
        RunResult serial = serialRun(cell);
        Fingerprint want = fingerprint(serial);
        Tick cycles = serial.stats.cycles;
        // Early, middle, and late cuts; the ticks land wherever the step
        // trajectory puts them (runUntil may overshoot under event skip),
        // which is exactly what a real checkpoint does.
        for (Tick snapAt :
             {Tick(1000), Tick(cycles / 2), Tick(cycles - 1000)}) {
            SCOPED_TRACE("snapAt=" + std::to_string(snapAt));
            EXPECT_EQ(fingerprint(roundTripRun(cell, snapAt)), want);
        }
    }
}

TEST(Snapshot, RoundTripAtTickZero)
{
    // Degenerate but legal: a snapshot before the first step.
    Cell cell;
    cell.cfg = smallConfig(WorkloadKind::kBTree, true);
    enableObservers(cell.cfg);
    EXPECT_EQ(fingerprint(roundTripRun(cell, 0)),
              fingerprint(serialRun(cell)));
}

TEST(Snapshot, RejectsVersionSkew)
{
    Machine machine(smallConfig(WorkloadKind::kLinkedList, true));
    machine.runUntil(1000);
    std::vector<uint8_t> bytes = machine.takeSnapshot().serialize();
    // The version field sits right after the 8-byte magic.
    bytes[8] ^= 0xff;
    EXPECT_THROW(SimSnapshot::deserialize(bytes.data(), bytes.size()),
                 SnapshotError);
}

TEST(Snapshot, RejectsBadMagic)
{
    Machine machine(smallConfig(WorkloadKind::kLinkedList, true));
    machine.runUntil(1000);
    std::vector<uint8_t> bytes = machine.takeSnapshot().serialize();
    bytes[0] ^= 0xff;
    EXPECT_THROW(SimSnapshot::deserialize(bytes.data(), bytes.size()),
                 SnapshotError);
}

TEST(Snapshot, RejectsConfigMismatch)
{
    RunConfig cfg = smallConfig(WorkloadKind::kLinkedList, true);
    Machine machine(cfg);
    machine.runUntil(1000);
    SimSnapshot snap = machine.takeSnapshot();

    RunConfig other = cfg;
    other.params.seed = 43;
    Machine resumed(other, nullptr, /*deferSetup=*/true);
    EXPECT_THROW(resumed.restoreSnapshot(snap), SnapshotError);
}

TEST(Snapshot, RejectsTrailingBytes)
{
    RunConfig cfg = smallConfig(WorkloadKind::kLinkedList, true);
    Machine machine(cfg);
    machine.runUntil(1000);
    SimSnapshot snap = machine.takeSnapshot();
    snap.payload.push_back(0);
    Machine resumed(cfg, nullptr, /*deferSetup=*/true);
    EXPECT_THROW(resumed.restoreSnapshot(snap), SnapshotError);
}

TEST(Snapshot, RejectsTruncatedPayload)
{
    RunConfig cfg = smallConfig(WorkloadKind::kLinkedList, true);
    Machine machine(cfg);
    machine.runUntil(1000);
    SimSnapshot snap = machine.takeSnapshot();
    snap.payload.resize(snap.payload.size() / 2);
    Machine resumed(cfg, nullptr, /*deferSetup=*/true);
    EXPECT_THROW(resumed.restoreSnapshot(snap), SnapshotError);
}

TEST(Snapshot, RejectsObserverMismatch)
{
    // A snapshot carrying audit state cannot restore into a machine
    // without the auditor: the section would be silently dropped.
    RunConfig cfg = smallConfig(WorkloadKind::kLinkedList, true);
    cfg.audit.enabled = true;
    Machine machine(cfg);
    machine.runUntil(1000);
    SimSnapshot snap = machine.takeSnapshot();

    RunConfig bare = cfg;
    bare.audit.enabled = false;
    Machine resumed(bare, nullptr, /*deferSetup=*/true);
    EXPECT_THROW(resumed.restoreSnapshot(snap), std::exception);
}

namespace
{

/** Small enough to run serially in a test, big enough for many slices. */
SliceOptions
tinySlices(unsigned workers)
{
    SliceOptions opts;
    opts.workers = workers;
    opts.targetSlices = 6;
    opts.minChunkCycles = 20000;
    return opts;
}

} // namespace

TEST(SliceParallel, MatchesSerialEverywhere)
{
    // Full-observer configs: the merged trace summary, cycle account,
    // and the producer-owned audit must all equal the serial run's.
    for (WorkloadKind kind :
         {WorkloadKind::kBTree, WorkloadKind::kLinkedList,
          WorkloadKind::kGraph, WorkloadKind::kAvlTreeIncremental}) {
        SCOPED_TRACE(workloadKindName(kind));
        RunConfig cfg = smallConfig(kind, true);
        enableObservers(cfg);
        Fingerprint serial = fingerprint(runExperiment(cfg));
        Fingerprint sliced =
            fingerprint(runSlicedExperiment(cfg, tinySlices(4)));
        EXPECT_EQ(sliced, serial);
    }
}

TEST(SliceParallel, WorkerCountInvariant)
{
    RunConfig cfg = smallConfig(WorkloadKind::kBTree, true);
    enableObservers(cfg);
    Fingerprint two = fingerprint(runSlicedExperiment(cfg, tinySlices(2)));
    Fingerprint eight =
        fingerprint(runSlicedExperiment(cfg, tinySlices(8)));
    EXPECT_EQ(two, eight);
}

TEST(SliceParallel, SerialFallback)
{
    // One resolved worker cannot overlap anything; the scheduler must
    // fall back to the plain serial path, not deadlock on itself.
    RunConfig cfg = smallConfig(WorkloadKind::kStringSwap, true);
    enableObservers(cfg);
    Fingerprint serial = fingerprint(runExperiment(cfg));
    EXPECT_EQ(fingerprint(runSlicedExperiment(cfg, tinySlices(1))),
              serial);
}

TEST(SliceParallel, ObserverFreeConfig)
{
    // No trace, no account, no audit: nothing to merge, stats and image
    // still exact.
    RunConfig cfg = smallConfig(WorkloadKind::kRbTree, true);
    Fingerprint serial = fingerprint(runExperiment(cfg));
    EXPECT_EQ(fingerprint(runSlicedExperiment(cfg, tinySlices(4))),
              serial);
}

TEST(Sampled, DeterministicAndSane)
{
    RunConfig cfg = smallConfig(WorkloadKind::kHashMap, true);
    cfg.params.simOps = 2000;
    cfg.account.enabled = true;

    SampledOptions opts;
    opts.samples = 6;
    opts.warmupOps = 32;
    opts.measureOps = 128;
    opts.workers = 4;

    SampledEstimate a = runSampledExperiment(cfg, opts);
    SampledEstimate b = runSampledExperiment(cfg, opts);
    EXPECT_EQ(a.toJson(), b.toJson());

    RunConfig exactCfg = cfg;
    exactCfg.account.enabled = false;
    RunResult exact = runExperiment(exactCfg);
    double actual = static_cast<double>(exact.stats.cycles);
    EXPECT_GT(a.estimatedCycles, 0.75 * actual);
    EXPECT_LT(a.estimatedCycles, 1.25 * actual);
    ASSERT_TRUE(a.hasShares);
    double shareSum = 0;
    for (double s : a.categoryShares)
        shareSum += s;
    // Shares partition the measured cycles (exclusive categories).
    EXPECT_NEAR(shareSum, 1.0, 1e-9);
    EXPECT_EQ(a.windows.size(), opts.samples);
    for (const SampleWindow &w : a.windows)
        EXPECT_GE(w.measuredOps, opts.measureOps / 2);
}

TEST(Sampled, WorkerCountInvariant)
{
    RunConfig cfg = smallConfig(WorkloadKind::kGraph, true);
    cfg.params.simOps = 1200;
    SampledOptions opts;
    opts.samples = 4;
    opts.warmupOps = 16;
    opts.measureOps = 64;
    opts.workers = 1;
    std::string one = runSampledExperiment(cfg, opts).toJson();
    opts.workers = 8;
    EXPECT_EQ(runSampledExperiment(cfg, opts).toJson(), one);
}
