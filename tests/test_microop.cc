/**
 * @file
 * Unit tests: micro-op definitions and predicates.
 */

#include <gtest/gtest.h>

#include "isa/microop.hh"

using namespace sp;

TEST(MicroOp, PersistOpPredicate)
{
    EXPECT_TRUE(isPersistOp(OpType::kClwb));
    EXPECT_TRUE(isPersistOp(OpType::kClflushOpt));
    EXPECT_TRUE(isPersistOp(OpType::kClflush));
    EXPECT_TRUE(isPersistOp(OpType::kPcommit));
    EXPECT_FALSE(isPersistOp(OpType::kStore));
    EXPECT_FALSE(isPersistOp(OpType::kSfence));
    EXPECT_FALSE(isPersistOp(OpType::kAlu));
}

TEST(MicroOp, OrderingOpPredicate)
{
    EXPECT_TRUE(isOrderingOp(OpType::kSfence));
    EXPECT_TRUE(isOrderingOp(OpType::kMfence));
    EXPECT_TRUE(isOrderingOp(OpType::kXchg));
    EXPECT_FALSE(isOrderingOp(OpType::kPcommit));
    EXPECT_FALSE(isOrderingOp(OpType::kLoad));
}

TEST(MicroOp, MemOpPredicate)
{
    EXPECT_TRUE(isMemOp(OpType::kLoad));
    EXPECT_TRUE(isMemOp(OpType::kStore));
    EXPECT_TRUE(isMemOp(OpType::kClwb));
    EXPECT_TRUE(isMemOp(OpType::kXchg));
    EXPECT_FALSE(isMemOp(OpType::kAlu));
    EXPECT_FALSE(isMemOp(OpType::kSfence));
    EXPECT_FALSE(isMemOp(OpType::kPcommit));
}

TEST(MicroOp, ClwbAlignsToBlock)
{
    MicroOp op = MicroOp::clwb(0x1234567);
    EXPECT_EQ(op.addr, blockAlign(0x1234567));
    EXPECT_EQ(op.size, kBlockBytes);
}

TEST(MicroOp, StoreCarriesValueAndDep)
{
    MicroOp op = MicroOp::store(0x100, 0xabcd, 4, 3);
    EXPECT_EQ(op.type, OpType::kStore);
    EXPECT_EQ(op.value, 0xabcdu);
    EXPECT_EQ(op.size, 4);
    EXPECT_EQ(op.dep, 3);
}

TEST(MicroOp, AluRepeatsCountAsInstructions)
{
    EXPECT_EQ(MicroOp::alu(17).instructionCount(), 17u);
    EXPECT_EQ(MicroOp::aluChain(9).instructionCount(), 9u);
    EXPECT_EQ(MicroOp::load(0, 8).instructionCount(), 1u);
}

TEST(MicroOp, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x1003F), 0x10000u);
    EXPECT_EQ(blockAlign(0x10040), 0x10040u);
    EXPECT_EQ(blockOffset(0x1003F), 0x3Fu);
}

TEST(MicroOp, NamesAreStable)
{
    EXPECT_STREQ(opName(OpType::kPcommit), "pcommit");
    EXPECT_STREQ(opName(OpType::kSfence), "sfence");
    EXPECT_STREQ(opName(OpType::kClwb), "clwb");
}

TEST(MicroOp, ToStringMentionsMnemonic)
{
    EXPECT_NE(MicroOp::pcommit().toString().find("pcommit"),
              std::string::npos);
    EXPECT_NE(MicroOp::load(0x40, 8, 2).toString().find("dep-2"),
              std::string::npos);
}
