/**
 * @file
 * The event-driven fast-forward contract: jumping the clock to the next
 * event tick (SimConfig::eventSkip, the default) must be invisible in
 * every architectural observable. Each configuration runs twice -- once
 * through the one-cycle-at-a-time oracle loop and once with cycle
 * skipping -- and the two runs must produce bit-identical Stats (full
 * CSV serialization), identical trace summaries, and identical durable
 * memory images. The grid crosses every workload with tracing on/off
 * and adversarial conflict injection on/off, plus a mid-run crash
 * snapshot, so the skip logic is exercised under sampled counters,
 * absolute-time probe schedules, and partial runs.
 *
 * Also here: long-run steady-state bounds. A max_cycles-scale run must
 * not accumulate unbounded bookkeeping (persist acks, flush flights,
 * controller flush records); the pipeline structures must stay at their
 * configured capacities.
 *
 * If BitIdentity fails, some component consumed time at a granularity
 * nextEventTick() does not report -- fix the event calculation, do not
 * loosen the comparison.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cpu/ooo_core.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"

using namespace sp;

namespace
{

struct Fingerprint
{
    std::string stats;
    std::string trace;
    uint64_t imageHash;
    bool completed;
    RunOutcome outcome;
    uint64_t generation;

    bool operator==(const Fingerprint &o) const = default;
};

Fingerprint
fingerprint(const RunResult &r)
{
    return {statsCsvRow("", r.stats),
            r.trace.enabled ? r.trace.toJson() : std::string(),
            r.durable.hash(),
            r.completed,
            r.outcome,
            r.functionalGeneration};
}

struct Cell
{
    RunConfig cfg;
    Tick crashAtCycle = 0;
    std::string name;
};

/** Workloads x {tracing, conflicts}, small enough for the oracle loop. */
std::vector<Cell>
bitIdentityGrid()
{
    std::vector<Cell> cells;
    auto add = [&](WorkloadKind kind, PersistMode mode, bool sp,
                   bool tracing, bool conflicts, Tick crashAt = 0) {
        Cell cell;
        cell.cfg.kind = kind;
        cell.cfg.params.seed = 42;
        cell.cfg.params.initOps = 200;
        cell.cfg.params.simOps = 25;
        cell.cfg.params.mode = mode;
        cell.cfg.sim.sp.enabled = sp;
        if (tracing)
            cell.cfg.trace.categories = kTraceAll;
        if (conflicts) {
            cell.cfg.sim.fault.conflict.enabled = true;
            cell.cfg.sim.fault.conflict.period = 2000;
            cell.cfg.sim.fault.conflict.seed = 7;
        }
        cell.crashAtCycle = crashAt;
        cell.name = workloadKindName(kind) + std::string("/") +
            persistModeName(mode) + (sp ? "/sp" : "") +
            (tracing ? "/trace" : "") + (conflicts ? "/conflict" : "") +
            (crashAt ? "/crash" : "");
        cells.push_back(cell);
    };

    for (WorkloadKind kind : allWorkloadKinds()) {
        for (bool tracing : {false, true}) {
            for (bool conflicts : {false, true})
                add(kind, PersistMode::kLogPSf, true, tracing, conflicts);
        }
    }
    // Non-speculative and barrier-free variants take different stall
    // paths through skipIdleCycles(); cover them on one workload each.
    add(WorkloadKind::kLinkedList, PersistMode::kLogPSf, false, true,
        false);
    add(WorkloadKind::kBTree, PersistMode::kLogP, false, false, false);
    add(WorkloadKind::kHashMap, PersistMode::kNone, false, false, false);
    // A crashed run's snapshot must also be skip-schedule independent.
    add(WorkloadKind::kStringSwap, PersistMode::kLogPSf, true, true, true,
        5000);
    return cells;
}

} // namespace

TEST(FastForward, BitIdentity)
{
    for (const Cell &cell : bitIdentityGrid()) {
        RunConfig tick = cell.cfg;
        tick.sim.eventSkip = false;
        RunConfig skip = cell.cfg;
        skip.sim.eventSkip = true;

        Fingerprint oracle =
            fingerprint(runExperiment(tick, cell.crashAtCycle));
        Fingerprint fast =
            fingerprint(runExperiment(skip, cell.crashAtCycle));

        EXPECT_EQ(oracle.stats, fast.stats) << cell.name;
        EXPECT_EQ(oracle.trace, fast.trace) << cell.name;
        EXPECT_EQ(oracle.imageHash, fast.imageHash) << cell.name;
        EXPECT_EQ(oracle.completed, fast.completed) << cell.name;
        EXPECT_EQ(oracle.outcome, fast.outcome) << cell.name;
        EXPECT_EQ(oracle.generation, fast.generation) << cell.name;
    }
}

// A barrier-free (Log+P) stream retires one clwb + one pcommit per
// record and never reaches a fence that would clear the core's persist
// bookkeeping. Before compaction, persistAcks_ and flushes_ grew one
// entry per op for the whole run; the controller kept a record per
// flush forever. Sliced execution checks the steady state, not just
// the final (drained) state.
TEST(FastForward, LongRunStateStaysBounded)
{
    constexpr unsigned kRecords = 3000;
    constexpr Addr kBase = 0x10000000;
    std::vector<MicroOp> ops;
    ops.reserve(kRecords * 3);
    for (unsigned i = 0; i < kRecords; ++i) {
        Addr addr = kBase + (i % 64) * kBlockBytes;
        ops.push_back(MicroOp::store(addr, i, 8));
        ops.push_back(MicroOp::clwb(addr));
        ops.push_back(MicroOp::pcommit());
    }

    SimConfig cfg;
    MemImage durable;
    Stats stats;
    TraceProgram prog(std::move(ops));
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    mc.setStats(&stats);
    caches.setStats(&stats);
    OooCore core(cfg, prog, caches, mc, stats);

    // Far larger than any compaction threshold or queue capacity, far
    // smaller than the ~6000 entries an uncompacted run accumulates.
    constexpr size_t kBound = 256;
    while (!core.done()) {
        core.runUntil(core.now() + 50000);
        EXPECT_LT(core.persistAckBacklog(), kBound);
        EXPECT_LT(core.flushFlightBacklog(), kBound);
        EXPECT_LT(mc.flushRecordCount(), kBound);
        EXPECT_LE(core.robOccupancy(), cfg.core.robSize);
        EXPECT_LE(core.unissuedBacklog(), cfg.core.issueQueueSize);
    }
    EXPECT_EQ(stats.pcommits, kRecords);
    // No fence ever acked the tail flushes, so records may remain at
    // done(); once the WPQ drains they must all be reclaimed.
    mc.advanceTo(core.now() + 10'000'000);
    EXPECT_EQ(mc.flushRecordCount(), 0u);
}
