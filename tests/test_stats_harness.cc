/**
 * @file
 * Unit tests: statistics derivations and the harness table/geomean
 * helpers used by every bench.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/table.hh"
#include "sim/stats.hh"

using namespace sp;

TEST(Stats, OverheadVs)
{
    Stats base, run;
    base.cycles = 1000;
    run.cycles = 1250;
    EXPECT_DOUBLE_EQ(run.overheadVs(base), 0.25);
    EXPECT_DOUBLE_EQ(base.overheadVs(base), 0.0);
}

TEST(Stats, InstructionRatio)
{
    Stats base, run;
    base.instructions = 200;
    run.instructions = 300;
    EXPECT_DOUBLE_EQ(run.instructionRatio(base), 1.5);
}

TEST(Stats, FetchStallRatio)
{
    Stats base, run;
    base.cycles = 1000;
    run.fetchQueueStallCycles = 400;
    EXPECT_DOUBLE_EQ(run.fetchStallRatio(base), 0.4);
}

TEST(Stats, StoresPerPcommit)
{
    Stats s;
    s.storesDuringPcommit = 60;
    s.pcommits = 4;
    EXPECT_DOUBLE_EQ(s.storesPerPcommit(), 15.0);
    Stats zero;
    EXPECT_DOUBLE_EQ(zero.storesPerPcommit(), 0.0);
}

TEST(Stats, BloomFalsePositiveRate)
{
    Stats s;
    s.bloomLookups = 200;
    s.bloomFalsePositives = 5;
    EXPECT_DOUBLE_EQ(s.bloomFalsePositiveRate(), 0.025);
}

TEST(Stats, ZeroBaseRatiosAreZero)
{
    Stats base, run;
    run.cycles = 10;
    run.instructions = 10;
    EXPECT_DOUBLE_EQ(run.overheadVs(base), 0.0);
    EXPECT_DOUBLE_EQ(run.instructionRatio(base), 0.0);
    EXPECT_DOUBLE_EQ(run.fetchStallRatio(base), 0.0);
}

TEST(Stats, PrintListsEveryCounterOnce)
{
    Stats s;
    s.cycles = 123456;
    std::ostringstream os;
    s.print(os, "  ");
    std::string out = os.str();
    EXPECT_NE(out.find("cycles"), std::string::npos);
    EXPECT_NE(out.find("123456"), std::string::npos);
    EXPECT_NE(out.find("bloomFalsePositives"), std::string::npos);
    EXPECT_NE(out.find("spsTriples"), std::string::npos);
}

TEST(Geomean, MatchesPaperDefinition)
{
    // Geometrically average the slowdown ratios and subtract one.
    // For equal overheads the geomean is that overhead.
    EXPECT_NEAR(geomeanOverhead({0.25, 0.25, 0.25}), 0.25, 1e-12);
    // For {1.2x, 1.8x}: sqrt(2.16)-1.
    EXPECT_NEAR(geomeanOverhead({0.2, 0.8}), std::sqrt(1.2 * 1.8) - 1.0,
                1e-12);
    EXPECT_DOUBLE_EQ(geomeanOverhead({}), 0.0);
}

TEST(TableFormat, PctAndNum)
{
    EXPECT_EQ(Table::pct(0.253), "+25.3%");
    EXPECT_EQ(Table::pct(-0.02), "-2.0%");
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

TEST(TableFormat, ColumnsAlign)
{
    Table t({"a", "bbbb"});
    t.addRow({"xxxxxx", "1"});
    t.addRow({"y", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("xxxxxx"), std::string::npos);
}

TEST(TableFormat, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(ConfigBanner, MentionsTable2Values)
{
    SimConfig cfg;
    std::ostringstream os;
    printConfigBanner(os, cfg);
    std::string out = os.str();
    EXPECT_NE(out.find("ROB: 128"), std::string::npos);
    EXPECT_NE(out.find("32KB"), std::string::npos);
    EXPECT_NE(out.find("2MB"), std::string::npos);
    EXPECT_NE(out.find("105 cycle read"), std::string::npos);
}
