/**
 * @file
 * The sweep engine's determinism contract: a run's outcome depends only
 * on its RunConfig, never on which worker ran it, how many workers
 * existed, or what ran beside it. The same grid is executed serially
 * (plain runExperiment loop) and through SweepEngine with 1, 2, and 8
 * workers; every run must produce bit-identical Stats (every counter,
 * via the full CSV serialization) and an identical durable MemImage
 * hash.
 *
 * If this suite fails, some shared mutable state leaked into the
 * simulation path -- fix the sharing, do not loosen the assertions.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

using namespace sp;

namespace
{

/** A small but heterogeneous grid: kinds x variants, plus one crash. */
std::vector<SweepJob>
determinismGrid()
{
    std::vector<SweepJob> jobs;
    struct V
    {
        PersistMode mode;
        bool sp;
    };
    for (WorkloadKind kind :
         {WorkloadKind::kLinkedList, WorkloadKind::kBTree,
          WorkloadKind::kHashMap}) {
        for (const V &v : {V{PersistMode::kNone, false},
                           V{PersistMode::kLogPSf, false},
                           V{PersistMode::kLogPSf, true}}) {
            SweepJob job;
            job.cfg.kind = kind;
            job.cfg.params.seed = 42;
            job.cfg.params.initOps = 200;
            job.cfg.params.simOps = 25;
            job.cfg.params.mode = v.mode;
            job.cfg.sim.sp.enabled = v.sp;
            jobs.push_back(job);
        }
    }
    // One mid-run crash snapshot: the durable image of a crashed run
    // must also be schedule-independent.
    SweepJob crash = jobs[4];
    crash.crashAtCycle = 5000;
    jobs.push_back(crash);
    return jobs;
}

struct Fingerprint
{
    std::string stats;
    uint64_t imageHash;
    bool completed;
    uint64_t generation;

    bool operator==(const Fingerprint &o) const = default;
};

Fingerprint
fingerprint(const RunResult &r)
{
    return {statsCsvRow("", r.stats), r.durable.hash(), r.completed,
            r.functionalGeneration};
}

} // namespace

TEST(SweepDeterminism, ParallelMatchesSerialForAnyWorkerCount)
{
    std::vector<SweepJob> jobs = determinismGrid();

    std::vector<Fingerprint> serial;
    for (const SweepJob &job : jobs)
        serial.push_back(
            fingerprint(runExperiment(job.cfg, job.crashAtCycle)));

    for (unsigned workers : {1u, 2u, 8u}) {
        SweepOptions opts;
        opts.workers = workers;
        std::vector<SweepRunResult> results =
            SweepEngine(opts).run(jobs);
        ASSERT_EQ(results.size(), jobs.size()) << workers << " workers";
        for (size_t i = 0; i < jobs.size(); ++i) {
            ASSERT_TRUE(results[i].ok)
                << workers << " workers, run " << i << ": "
                << results[i].error;
            EXPECT_EQ(results[i].index, i);
            Fingerprint fp = fingerprint(results[i].run);
            EXPECT_EQ(fp.stats, serial[i].stats)
                << workers << " workers, run " << i
                << ": stats diverged from the serial baseline";
            EXPECT_EQ(fp.imageHash, serial[i].imageHash)
                << workers << " workers, run " << i
                << ": durable image diverged from the serial baseline";
            EXPECT_EQ(fp.completed, serial[i].completed);
            EXPECT_EQ(fp.generation, serial[i].generation);
        }
    }
}

TEST(SweepDeterminism, RepeatedParallelSweepsAgree)
{
    // Two 8-worker sweeps of the same grid must agree run for run --
    // catches nondeterminism that happens to differ from serial in the
    // same way twice only with very low probability.
    std::vector<SweepJob> jobs = determinismGrid();
    SweepOptions opts;
    opts.workers = 8;
    std::vector<SweepRunResult> a = SweepEngine(opts).run(jobs);
    std::vector<SweepRunResult> b = SweepEngine(opts).run(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok && b[i].ok);
        EXPECT_EQ(fingerprint(a[i].run), fingerprint(b[i].run))
            << "run " << i;
    }
}

TEST(SweepDeterminism, SeedSweepAggregatesMatchSerialLoop)
{
    // runSeedSweep now rides the engine; its aggregates must equal the
    // hand-rolled serial computation exactly (no floating-point drift:
    // the inputs are identical integers, summed in the same order).
    RunConfig cfg = makeRunConfig(WorkloadKind::kLinkedList,
                                  PersistMode::kLogPSf, true);
    cfg.params.initOps = 150;
    cfg.params.simOps = 20;

    const unsigned kRuns = 5;
    std::vector<uint64_t> cycles;
    RunConfig serialCfg = cfg;
    for (unsigned i = 0; i < kRuns; ++i) {
        serialCfg.params.seed = 1 + i;
        cycles.push_back(runExperiment(serialCfg).stats.cycles);
    }

    SeedSweep sweep = runSeedSweep(cfg, kRuns, 1);
    EXPECT_EQ(sweep.runs, kRuns);
    EXPECT_EQ(sweep.minCycles,
              *std::min_element(cycles.begin(), cycles.end()));
    EXPECT_EQ(sweep.maxCycles,
              *std::max_element(cycles.begin(), cycles.end()));
    double sum = 0;
    for (uint64_t c : cycles)
        sum += static_cast<double>(c);
    EXPECT_DOUBLE_EQ(sweep.meanCycles, sum / kRuns);
}
