/**
 * @file
 * Durability-audit tests: the happens-before-durable checker itself
 * (hand-built op streams with known verdicts), golden clean audits for
 * every campaign workload, the audit-never-perturbs-the-run bit-identity
 * contract (single runs and an 8-worker sweep), and the
 * SweepFailureRecord path for auditor exceptions inside a sweep.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "sim/audit.hh"
#include "sim/trace.hh"

using namespace sp;

namespace
{

constexpr Addr kA = 0x10000000; // ctrl 0 under 2-way interleave
constexpr Addr kB = 0x10000040; // ctrl 1
constexpr Addr kC = 0x10000080; // ctrl 0
constexpr Addr kD = 0x100000c0; // ctrl 1

/** Feed a hand-built stream; op index == position, tick = 10 * index. */
AuditReport
auditStream(const std::vector<MicroOp> &ops, unsigned numMemCtrls = 1,
            AuditOptions opts = {})
{
    opts.enabled = true;
    DurabilityAuditor aud(opts, numMemCtrls);
    uint64_t idx = 0;
    for (const MicroOp &op : ops) {
        aud.observe(op, idx, idx * 10);
        ++idx;
    }
    return aud.finalize();
}

std::vector<MicroOp>
barrier()
{
    return {MicroOp::sfence(), MicroOp::pcommit(), MicroOp::sfence()};
}

void
append(std::vector<MicroOp> &ops, const std::vector<MicroOp> &tail)
{
    ops.insert(ops.end(), tail.begin(), tail.end());
}

/** Full-fidelity fingerprint of a run: every stat plus the NVMM hash. */
std::string
fingerprint(const RunResult &r)
{
    return statsCsvRow("fp", r.stats) + "#" +
        std::to_string(r.durable.hash()) + "#" +
        std::to_string(r.functionalGeneration);
}

} // namespace

// ==========================================================================
// The checker on hand-built streams
// ==========================================================================

TEST(AuditChecker, MissingClwbFlaggedAtExactStorePC)
{
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8)); // op 0
    ops.push_back(MicroOp::clwb(kA));        // op 1
    append(ops, barrier());                  // ops 2-4, epoch 1
    ops.push_back(MicroOp::store(kB, 2, 8)); // op 5: never flushed
    append(ops, barrier());                  // ops 6-8, epoch 2
    ops.push_back(MicroOp::store(kC, 3, 8)); // op 9
    ops.push_back(MicroOp::clwb(kC));        // op 10: the witness flush

    AuditReport rep = auditStream(ops);
    EXPECT_FALSE(rep.clean());
    ASSERT_EQ(rep.findings.size(), 1u);
    const AuditFinding &f = rep.findings[0];
    EXPECT_EQ(f.kind, AuditFindingKind::kUnorderedStore);
    EXPECT_EQ(f.line, blockAlign(kB));
    EXPECT_EQ(f.storeOp, 5u) << "finding must name the exact store PC";
    EXPECT_EQ(f.storeEpoch, 1u);
    EXPECT_EQ(f.witnessLine, blockAlign(kC));
    EXPECT_EQ(f.witnessOp, 9u);
    EXPECT_EQ(f.witnessEpoch, 2u);
    EXPECT_EQ(f.flushOp, 10u);
    EXPECT_EQ(f.firstTick, 100u);
    EXPECT_EQ(f.resolvedOp, 0u) << "kB is never flushed";
    EXPECT_EQ(rep.epochs, 2u);
}

TEST(AuditChecker, LateClwbStillFlaggedAndResolved)
{
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kB, 2, 8)); // op 0
    append(ops, barrier());                  // epoch 1
    ops.push_back(MicroOp::store(kC, 3, 8)); // op 4
    ops.push_back(MicroOp::clwb(kC));        // op 5: witness
    ops.push_back(MicroOp::clwb(kB));        // op 6: late flush
    append(ops, barrier());

    AuditReport rep = auditStream(ops);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].storeOp, 0u);
    EXPECT_EQ(rep.findings[0].resolvedOp, 6u)
        << "the late flush must resolve the finding's crash window";
    EXPECT_EQ(rep.findings[0].resolvedTick, 60u);
    EXPECT_FALSE(rep.clean()) << "late is still a violation";
}

TEST(AuditChecker, SameEpochFlushOrderIsClean)
{
    // Stores and flushes freely interleaved inside one epoch: FIFO
    // order within the epoch carries no ordering obligation.
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8));
    ops.push_back(MicroOp::store(kB, 2, 8));
    ops.push_back(MicroOp::clwb(kB)); // younger line flushed first: fine
    ops.push_back(MicroOp::clwb(kA));
    append(ops, barrier());
    ops.push_back(MicroOp::store(kC, 3, 8));
    ops.push_back(MicroOp::clwb(kC));

    AuditReport rep = auditStream(ops);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.epochs, 1u);
}

TEST(AuditChecker, UnflushedTailIsNotAViolation)
{
    // A dirty line at end of run with no overtaking flush: clean
    // shutdown writes it back, a crash rolls the transaction back.
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8));
    ops.push_back(MicroOp::clwb(kA));
    append(ops, barrier());
    ops.push_back(MicroOp::store(kB, 2, 8));

    AuditReport rep = auditStream(ops);
    EXPECT_TRUE(rep.clean());
}

TEST(AuditChecker, RedundantBarriersDetected)
{
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::clwb(kD));  // flush of a never-written line
    ops.push_back(MicroOp::store(kA, 1, 8));
    ops.push_back(MicroOp::clwb(kA));
    ops.push_back(MicroOp::clwb(kA));  // duplicate: nothing left to flush
    append(ops, barrier());
    ops.push_back(MicroOp::pcommit()); // no flush since the last pcommit
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::sfence());  // orders nothing at all

    AuditReport rep = auditStream(ops);
    EXPECT_TRUE(rep.clean()) << "redundancy warns, never violates";
    EXPECT_EQ(rep.redundantFlushes, 2u);
    EXPECT_EQ(rep.redundantPcommits, 1u);
    EXPECT_EQ(rep.redundantFences, 1u);
}

TEST(AuditChecker, CrossControllerFenceGapFlaggedOnlyWithManyCtrls)
{
    // kA flushed *after* the pcommit marker: the seal misses it. On one
    // controller the global FIFO still orders it ahead of kB's flush --
    // benign. On two controllers the queues drain independently and the
    // younger kB write can land first -- violation.
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8)); // op 0, epoch 0, ctrl 0
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::clwb(kA));        // op 3: after the marker
    ops.push_back(MicroOp::sfence());        // seals nothing of kA
    ops.push_back(MicroOp::store(kB, 2, 8)); // op 5, epoch 1, ctrl 1
    ops.push_back(MicroOp::clwb(kB));        // op 6: witness

    AuditReport one = auditStream(ops, 1);
    EXPECT_TRUE(one.clean()) << "single controller: FIFO covers the gap";

    AuditReport two = auditStream(ops, 2);
    EXPECT_FALSE(two.clean());
    ASSERT_EQ(two.findings.size(), 1u);
    EXPECT_EQ(two.findings[0].kind, AuditFindingKind::kUnorderedFlush);
    EXPECT_EQ(two.findings[0].line, blockAlign(kA));
    EXPECT_EQ(two.findings[0].storeOp, 3u) << "names the unsealed flush";
    EXPECT_EQ(two.findings[0].witnessLine, blockAlign(kB));
    EXPECT_EQ(two.findings[0].flushOp, 6u);
}

TEST(AuditChecker, SealedCrossControllerFlushesAreClean)
{
    // Same two-controller shape, but the flush happens before its
    // pcommit: the completed pair orders it, no violation.
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8));
    ops.push_back(MicroOp::clwb(kA));
    append(ops, barrier());
    ops.push_back(MicroOp::store(kB, 2, 8));
    ops.push_back(MicroOp::clwb(kB));

    EXPECT_TRUE(auditStream(ops, 2).clean());
}

TEST(AuditChecker, EdgesDedupIntoOneFindingPerStore)
{
    // One missing clwb witnessed by three later-epoch flushes: one
    // finding, three edges.
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kB, 2, 8));
    append(ops, barrier());
    for (Addr a : {kA, kC, kD}) {
        ops.push_back(MicroOp::store(a, 1, 8));
        ops.push_back(MicroOp::clwb(a));
    }

    AuditReport rep = auditStream(ops);
    ASSERT_EQ(rep.findings.size(), 1u);
    EXPECT_EQ(rep.findings[0].edges, 3u);
    EXPECT_EQ(rep.violationEdges, 3u);
}

TEST(AuditChecker, MaxFindingsTruncates)
{
    AuditOptions opts;
    opts.maxFindings = 1;
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kA, 1, 8));
    ops.push_back(MicroOp::store(kB, 2, 8));
    append(ops, barrier());
    ops.push_back(MicroOp::store(kC, 3, 8));
    ops.push_back(MicroOp::clwb(kC));

    AuditReport rep = auditStream(ops, 1, opts);
    EXPECT_EQ(rep.findings.size(), 1u);
    EXPECT_TRUE(rep.findingsTruncated);
    EXPECT_EQ(rep.violationEdges, 2u);
    EXPECT_FALSE(rep.clean());
}

TEST(AuditChecker, FailOnViolationThrows)
{
    AuditOptions opts;
    opts.enabled = true;
    opts.failOnViolation = true;
    DurabilityAuditor aud(opts, 1);
    uint64_t idx = 0;
    auto feed = [&](const MicroOp &op) {
        aud.observe(op, idx, idx * 10);
        ++idx;
    };
    feed(MicroOp::store(kB, 2, 8));
    for (const MicroOp &op : barrier())
        feed(op);
    feed(MicroOp::store(kC, 3, 8));
    feed(MicroOp::clwb(kC));
    EXPECT_THROW(aud.finalize(), std::runtime_error);
}

TEST(AuditChecker, ReportJsonIsValid)
{
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kB, 2, 8));
    append(ops, barrier());
    ops.push_back(MicroOp::store(kC, 3, 8));
    ops.push_back(MicroOp::clwb(kC));
    AuditReport rep = auditStream(ops);
    std::string err;
    EXPECT_TRUE(jsonIsValid(rep.toJson(), &err)) << err;
    EXPECT_FALSE(rep.findings.empty());
    EXPECT_FALSE(rep.findings[0].toString().empty());
}

// ==========================================================================
// Golden clean audits over the whole campaign matrix
// ==========================================================================

TEST(AuditGolden, AllCampaignWorkloadsAuditClean)
{
    for (WorkloadKind kind : campaignWorkloads()) {
        std::string spOffJson;
        for (bool sp : {false, true}) {
            RunConfig cfg;
            cfg.kind = kind;
            cfg.params = defaultParams(kind);
            cfg.params.seed = 7;
            cfg.params.initOps = 150;
            cfg.params.simOps = 15;
            cfg.params.mode = PersistMode::kLogPSf;
            cfg.sim.sp.enabled = sp;
            cfg.audit.enabled = true;

            RunResult r = runExperiment(cfg);
            ASSERT_TRUE(r.completed);
            ASSERT_TRUE(r.audit.enabled);
            std::string diag;
            for (const AuditFinding &f : r.audit.findings)
                diag += "\n  " + f.toString();
            EXPECT_TRUE(r.audit.clean())
                << workloadKindName(kind) << " sp=" << sp << diag;
            EXPECT_GT(r.audit.stores, 0u);
            EXPECT_GT(r.audit.flushes, 0u);
            EXPECT_GT(r.audit.epochs, 0u);
            // The WAL protocol flushes exactly what it dirtied: no
            // redundant barrier anywhere in the seed workloads.
            EXPECT_EQ(r.audit.redundantFlushes, 0u)
                << workloadKindName(kind);
            EXPECT_EQ(r.audit.redundantFences, 0u);
            EXPECT_EQ(r.audit.redundantPcommits, 0u);

            // The audit is stream-level: speculation must not change
            // the retired stream, so the whole report is SP-invariant.
            if (!sp)
                spOffJson = r.audit.toJson();
            else
                EXPECT_EQ(r.audit.toJson(), spOffJson)
                    << workloadKindName(kind)
                    << ": SP changed the retired op stream";
        }
    }
}

TEST(AuditGolden, FenceFreeModesAuditCleanByConstruction)
{
    // kLogP never completes a pcommit+sfence pair, so no durability
    // epoch ever begins and no ordering promise can be violated.
    RunConfig cfg;
    cfg.kind = WorkloadKind::kBTree;
    cfg.params = defaultParams(cfg.kind);
    cfg.params.initOps = 150;
    cfg.params.simOps = 15;
    cfg.params.mode = PersistMode::kLogP;
    cfg.audit.enabled = true;
    RunResult r = runExperiment(cfg);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.audit.clean());
    EXPECT_EQ(r.audit.epochs, 0u);
    EXPECT_GT(r.audit.flushes, 0u);
    EXPECT_EQ(r.audit.fences, 0u);
}

TEST(AuditGolden, CrashedRunStillReports)
{
    RunConfig cfg;
    cfg.kind = WorkloadKind::kLinkedList;
    cfg.params = defaultParams(cfg.kind);
    cfg.params.initOps = 150;
    cfg.params.simOps = 15;
    cfg.audit.enabled = true;
    RunResult full = runExperiment(cfg);
    RunResult crashed = runExperiment(cfg, full.stats.cycles / 2);
    ASSERT_FALSE(crashed.completed);
    EXPECT_TRUE(crashed.audit.enabled);
    EXPECT_TRUE(crashed.audit.clean());
    EXPECT_GT(crashed.audit.ops, 0u);
    EXPECT_LT(crashed.audit.ops, full.audit.ops);
}

// ==========================================================================
// Audit-on vs audit-off bit-identity
// ==========================================================================

TEST(AuditDeterminism, SingleRunUnperturbed)
{
    for (WorkloadKind kind :
         {WorkloadKind::kLinkedList, WorkloadKind::kBTree,
          WorkloadKind::kAvlTreeIncremental}) {
        RunConfig cfg;
        cfg.kind = kind;
        cfg.params = defaultParams(kind);
        cfg.params.initOps = 150;
        cfg.params.simOps = 15;
        cfg.sim.sp.enabled = true;

        RunResult off = runExperiment(cfg);
        cfg.audit.enabled = true;
        RunResult on = runExperiment(cfg);
        EXPECT_EQ(fingerprint(off), fingerprint(on))
            << workloadKindName(kind) << ": audit perturbed the run";
        EXPECT_FALSE(off.audit.enabled);
        EXPECT_TRUE(on.audit.enabled);
    }
}

TEST(AuditDeterminism, MultiWorkerSweepUnperturbed)
{
    // Every campaign workload, audit off and on, on an 8-worker pool:
    // per-cell fingerprints must pair up exactly and the audited
    // sweep's aggregates must reconcile.
    std::vector<RunConfig> grid;
    for (WorkloadKind kind : campaignWorkloads()) {
        RunConfig cfg;
        cfg.kind = kind;
        cfg.params = defaultParams(kind);
        cfg.params.initOps = 120;
        cfg.params.simOps = 12;
        cfg.sim.sp.enabled = true;
        grid.push_back(cfg);
    }
    std::vector<RunConfig> auditedGrid = grid;
    for (RunConfig &cfg : auditedGrid)
        cfg.audit.enabled = true;

    SweepOptions opts;
    opts.workers = 8;
    SweepEngine engine(opts);
    std::vector<SweepRunResult> silent = engine.run(grid);
    std::vector<SweepRunResult> audited = engine.run(auditedGrid);
    ASSERT_EQ(silent.size(), audited.size());
    for (size_t i = 0; i < silent.size(); ++i) {
        ASSERT_TRUE(silent[i].ok && audited[i].ok);
        EXPECT_EQ(fingerprint(silent[i].run), fingerprint(audited[i].run))
            << "grid cell " << i;
        EXPECT_TRUE(audited[i].run.audit.clean());
    }

    SweepSummary silentSum = summarizeSweep(silent);
    SweepSummary auditedSum = summarizeSweep(audited);
    EXPECT_EQ(silentSum.auditedRuns, 0u);
    EXPECT_EQ(auditedSum.auditedRuns, audited.size());
    EXPECT_EQ(auditedSum.auditCleanRuns, audited.size());
    EXPECT_EQ(auditedSum.auditFindings, 0u);
    EXPECT_EQ(silentSum.meanCycles, auditedSum.meanCycles);
    EXPECT_EQ(silentSum.minCycles, auditedSum.minCycles);
    EXPECT_EQ(silentSum.maxCycles, auditedSum.maxCycles);
    std::string err;
    EXPECT_TRUE(jsonIsValid(auditedSum.toJson(), &err)) << err;
}

// ==========================================================================
// SweepFailureRecord: auditor exceptions surface config + message
// ==========================================================================

TEST(AuditSweepFailure, ViolationSurfacesOffendingConfig)
{
    // Cell 0: clean run. Cell 1: a barrier-mutated run with
    // failOnViolation -- the auditor throws inside the sweep worker and
    // the failure record must carry the offending RunConfig description
    // and the auditor's message, not a silent null result.
    RunConfig clean;
    clean.kind = WorkloadKind::kLinkedList;
    clean.params = defaultParams(clean.kind);
    clean.params.initOps = 150;
    clean.params.simOps = 15;
    clean.audit.enabled = true;
    clean.audit.failOnViolation = true;

    RunResult probe = runExperiment(clean);
    ASSERT_TRUE(probe.audit.clean());

    RunConfig mutant = clean;
    // Find a flush whose drop the checker flags (drops of re-flushed
    // log-boundary blocks are benign; scan past them).
    bool found = false;
    for (uint64_t occ = probe.audit.flushes / 2;
         occ < probe.audit.flushes && !found; ++occ) {
        mutant.params.mutation.kind = BarrierMutation::Kind::kDrop;
        mutant.params.mutation.target = BarrierMutation::Target::kClwb;
        mutant.params.mutation.occurrence = occ;
        RunConfig scout = mutant;
        scout.audit.failOnViolation = false;
        if (!runExperiment(scout).audit.clean())
            found = true;
    }
    ASSERT_TRUE(found) << "no flaggable clwb drop in the back half";

    std::vector<RunConfig> grid = {clean, mutant};
    SweepOptions opts;
    opts.workers = 2;
    std::vector<SweepRunResult> results = SweepEngine(opts).run(grid);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    ASSERT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].outcome, RunOutcome::kException);
    EXPECT_NE(results[1].error.find("durability audit"), std::string::npos)
        << results[1].error;

    SweepSummary sum = summarizeSweep(results);
    EXPECT_EQ(sum.exceptionRuns, 1u);
    ASSERT_EQ(sum.failures.size(), 1u);
    EXPECT_EQ(sum.failures[0].index, 1u);
    EXPECT_NE(sum.failures[0].error.find("durability audit"),
              std::string::npos);
    EXPECT_NE(sum.failures[0].config.find("mut=drop:clwb"),
              std::string::npos)
        << "failure record must name the mutated config: "
        << sum.failures[0].config;
    EXPECT_NE(sum.failures[0].config.find("audit=1"), std::string::npos);
    std::string err;
    EXPECT_TRUE(jsonIsValid(sum.toJson(), &err)) << err;
}
