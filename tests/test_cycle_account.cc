/**
 * @file
 * The cycle-accounting contract (sim/cycle_account.hh), in four parts:
 *
 *  1. Exhaustiveness: for every workload x speculation x clocking x
 *     failure-injection cell, the exclusive categories sum exactly to
 *     Stats::cycles -- no cycle uncounted, none double counted --
 *     including crashed and conflict-riddled partial runs.
 *
 *  2. Pure observation: attaching an accountant never perturbs the
 *     simulation. Stats, the durable image, and sweep fingerprints are
 *     bit-identical with accounting on or off, for any worker count.
 *
 *  3. Telescoping: the fence_exposed category reproduces the existing
 *     Stats::fenceStallCycles counter exactly (same condition, same
 *     skip attribution), and the oracle tick loop and event-skip runs
 *     produce identical accounts.
 *
 *  4. The ledger: on a hand-built two-epoch stream the barrier-pending
 *     cycles decompose into hidden + exposed, episodes match the
 *     barrier count, and the window lengths cross-validate against the
 *     trace's own SPECULATE/pcommit event ticks.
 *
 * If exhaustiveness fails, OooCore::classifyCycle and the skip-span
 * attribution in skipIdleCycles disagree about some cycle -- fix the
 * classification, do not loosen the identity.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cpu/ooo_core.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "sim/cycle_account.hh"
#include "sim/trace.hh"

using namespace sp;

namespace
{

struct Cell
{
    RunConfig cfg;
    Tick crashAtCycle = 0;
    std::string name;
};

/** Workloads x {sp, eventSkip}, plus crash and conflict cells. */
std::vector<Cell>
accountGrid()
{
    std::vector<Cell> cells;
    auto add = [&](WorkloadKind kind, bool sp, bool eventSkip,
                   bool conflicts = false, Tick crashAt = 0) {
        Cell cell;
        cell.cfg.kind = kind;
        cell.cfg.params.seed = 42;
        cell.cfg.params.initOps = 200;
        cell.cfg.params.simOps = 25;
        cell.cfg.params.mode = PersistMode::kLogPSf;
        cell.cfg.sim.sp.enabled = sp;
        cell.cfg.sim.eventSkip = eventSkip;
        cell.cfg.account.enabled = true;
        if (conflicts) {
            cell.cfg.sim.fault.conflict.enabled = true;
            cell.cfg.sim.fault.conflict.period = 2000;
            cell.cfg.sim.fault.conflict.seed = 7;
        }
        cell.crashAtCycle = crashAt;
        cell.name = workloadKindName(kind) + std::string(sp ? "/sp" : "") +
            (eventSkip ? "/skip" : "/tick") +
            (conflicts ? "/conflict" : "") + (crashAt ? "/crash" : "");
        cells.push_back(cell);
    };

    for (WorkloadKind kind : allWorkloadKinds()) {
        for (bool sp : {false, true}) {
            for (bool eventSkip : {false, true})
                add(kind, sp, eventSkip);
        }
    }
    // Partial runs must satisfy the identity too: the crash snapshot
    // and conflict-abort paths exit runUntil through different code.
    add(WorkloadKind::kStringSwap, true, true, false, 5000);
    add(WorkloadKind::kStringSwap, true, false, false, 5000);
    add(WorkloadKind::kBTree, true, true, true);
    add(WorkloadKind::kBTree, true, false, true);
    return cells;
}

struct Fingerprint
{
    std::string stats;
    uint64_t imageHash;
    bool completed;
    RunOutcome outcome;
    uint64_t generation;

    bool operator==(const Fingerprint &o) const = default;
};

Fingerprint
fingerprint(const RunResult &r)
{
    return {statsCsvRow("", r.stats), r.durable.hash(), r.completed,
            r.outcome, r.functionalGeneration};
}

/** Summary JSON minus totalWallMs, the one legitimately wall-clock-
 *  dependent field. */
std::string
stripWallMs(std::string json)
{
    size_t begin = json.find("\"totalWallMs\":");
    if (begin == std::string::npos)
        return json;
    size_t end = json.find(',', begin);
    json.erase(begin, end - begin + 1);
    return json;
}

/** A store that must persist, then a long fully-parallel compute tail
 *  speculation can overlap with the barrier drain. */
void
appendEpoch(std::vector<MicroOp> &ops, Addr addr, uint64_t value)
{
    ops.push_back(MicroOp::store(addr, value, 8));
    ops.push_back(MicroOp::clwb(addr));
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::alu(5000));
}

struct LedgerRun
{
    Stats stats;
    CycleAccount account;
    std::vector<TraceEvent> events;
};

LedgerRun
runTwoEpochs(bool sp)
{
    SimConfig cfg;
    cfg.sp.enabled = sp;
    MemImage durable;
    LedgerRun out;

    std::vector<MicroOp> ops;
    appendEpoch(ops, 0x10000000, 1);
    appendEpoch(ops, 0x20000000, 2);

    TraceProgram prog(std::move(ops));
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    mc.setStats(&out.stats);
    caches.setStats(&out.stats);
    OooCore core(cfg, prog, caches, mc, out.stats);

    TraceOptions topts;
    topts.categories = kTraceAll;
    Tracer tracer(topts);
    core.setTracer(&tracer);
    CycleAccountant accountant;
    core.setAccountant(&accountant);

    core.run();
    out.account = accountant.finalize(out.stats.cycles);
    out.events = tracer.events();
    return out;
}

} // namespace

TEST(CycleAccount, IdentityMatrix)
{
    for (const Cell &cell : accountGrid()) {
        RunResult r = runExperiment(cell.cfg, cell.crashAtCycle);
        ASSERT_TRUE(r.account.enabled) << cell.name;
        EXPECT_EQ(r.account.cycles, r.stats.cycles) << cell.name;
        EXPECT_EQ(r.account.total(), r.stats.cycles) << cell.name;
        EXPECT_TRUE(r.account.selfConsistent()) << cell.name;
        EXPECT_EQ(r.account.ledger.hiddenCycles +
                      r.account.ledger.exposedCycles,
                  r.account.ledger.barrierCycles)
            << cell.name;
    }
}

TEST(CycleAccount, FenceExposedTelescopesToStats)
{
    for (const Cell &cell : accountGrid()) {
        RunResult r = runExperiment(cell.cfg, cell.crashAtCycle);
        EXPECT_EQ(r.account.cat(CycleCat::kFenceExposed),
                  r.stats.fenceStallCycles)
            << cell.name;
    }
}

TEST(CycleAccount, AccountingIsAPureObserver)
{
    for (WorkloadKind kind : allWorkloadKinds()) {
        for (bool sp : {false, true}) {
            RunConfig off;
            off.kind = kind;
            off.params.seed = 42;
            off.params.initOps = 200;
            off.params.simOps = 25;
            off.params.mode = PersistMode::kLogPSf;
            off.sim.sp.enabled = sp;
            RunConfig on = off;
            on.account.enabled = true;

            RunResult plain = runExperiment(off);
            RunResult counted = runExperiment(on);
            std::string name = workloadKindName(kind) +
                std::string(sp ? "/sp" : "");
            EXPECT_FALSE(plain.account.enabled) << name;
            EXPECT_EQ(fingerprint(plain), fingerprint(counted)) << name;
        }
    }
}

TEST(CycleAccount, OracleAndSkipAccountsAgree)
{
    for (WorkloadKind kind :
         {WorkloadKind::kBTree, WorkloadKind::kHashMap,
          WorkloadKind::kStringSwap}) {
        for (bool sp : {false, true}) {
            RunConfig tick;
            tick.kind = kind;
            tick.params.seed = 42;
            tick.params.initOps = 200;
            tick.params.simOps = 25;
            tick.params.mode = PersistMode::kLogPSf;
            tick.sim.sp.enabled = sp;
            tick.sim.eventSkip = false;
            tick.account.enabled = true;
            RunConfig skip = tick;
            skip.sim.eventSkip = true;

            RunResult oracle = runExperiment(tick);
            RunResult fast = runExperiment(skip);
            EXPECT_EQ(oracle.account.toJson(), fast.account.toJson())
                << workloadKindName(kind) << (sp ? "/sp" : "");
        }
    }
}

TEST(CycleAccount, SweepMergeIsWorkerCountInvariant)
{
    std::vector<RunConfig> grid;
    for (WorkloadKind kind : allWorkloadKinds()) {
        RunConfig cfg;
        cfg.kind = kind;
        cfg.params.seed = 42;
        cfg.params.initOps = 200;
        cfg.params.simOps = 25;
        cfg.params.mode = PersistMode::kLogPSf;
        cfg.sim.sp.enabled = true;
        cfg.account.enabled = true;
        grid.push_back(cfg);
    }

    std::vector<std::vector<SweepRunResult>> byWorkers;
    std::vector<std::string> summaries;
    for (unsigned workers : {1u, 8u}) {
        SweepOptions opts;
        opts.workers = workers;
        std::vector<SweepRunResult> results = SweepEngine(opts).run(grid);
        ASSERT_EQ(results.size(), grid.size()) << workers << " workers";
        SweepSummary summary = summarizeSweep(results);
        EXPECT_EQ(summary.accountedRuns, grid.size())
            << workers << " workers";
        EXPECT_TRUE(summary.account.selfConsistent())
            << workers << " workers";
        summaries.push_back(stripWallMs(summary.toJson()));
        byWorkers.push_back(std::move(results));
    }
    for (size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(fingerprint(byWorkers[0][i].run),
                  fingerprint(byWorkers[1][i].run))
            << "run " << i;
        EXPECT_EQ(byWorkers[0][i].run.account.toJson(),
                  byWorkers[1][i].run.account.toJson())
            << "run " << i;
    }
    EXPECT_EQ(summaries[0], summaries[1]);
}

TEST(CycleAccount, MergeSumsRunsExactly)
{
    RunConfig cfg;
    cfg.kind = WorkloadKind::kBTree;
    cfg.params.seed = 42;
    cfg.params.initOps = 200;
    cfg.params.simOps = 25;
    cfg.params.mode = PersistMode::kLogPSf;
    cfg.sim.sp.enabled = true;
    cfg.account.enabled = true;
    RunConfig other = cfg;
    other.sim.sp.enabled = false;

    RunResult a = runExperiment(cfg);
    RunResult b = runExperiment(other);
    CycleAccount merged = a.account;
    merged.merge(b.account);
    EXPECT_TRUE(merged.selfConsistent());
    EXPECT_EQ(merged.cycles, a.account.cycles + b.account.cycles);
    EXPECT_EQ(merged.total(), a.account.total() + b.account.total());
    for (unsigned c = 0; c < kNumCycleCats; ++c) {
        EXPECT_EQ(merged.categories[c],
                  a.account.categories[c] + b.account.categories[c]);
    }
    EXPECT_EQ(merged.ledger.barrierCycles,
              a.account.ledger.barrierCycles +
                  b.account.ledger.barrierCycles);
    EXPECT_EQ(merged.ledger.episodeLatency.samples(),
              a.account.ledger.episodeLatency.samples() +
                  b.account.ledger.episodeLatency.samples());
}

// Two persist barriers, each followed by 5000 independent ALU ops (1250
// retire cycles at width 4) -- far more slack than the ~400-cycle WPQ
// drain, so with speculation both barrier windows should be almost
// entirely hidden behind compute.
TEST(CycleAccount, TwoEpochLedgerWithSpeculation)
{
    LedgerRun r = runTwoEpochs(true);
    const SpeculationLedger &ledger = r.account.ledger;

    EXPECT_EQ(ledger.specEpisodes, 2u);
    EXPECT_EQ(ledger.barrierEpisodes, 2u);
    EXPECT_EQ(ledger.hiddenCycles + ledger.exposedCycles,
              ledger.barrierCycles);
    EXPECT_GT(ledger.barrierCycles, 0u);
    // The compute tail dwarfs the drain: the windows are nearly all
    // hidden (a handful of edge cycles may classify as stalls).
    EXPECT_GE(ledger.hiddenCycles * 10, ledger.barrierCycles * 9);
    EXPECT_EQ(ledger.episodeLatency.samples(), 2u);
    EXPECT_EQ(ledger.episodeHidden.samples(), 2u);

    // Cross-validate the window lengths against the trace's own clock:
    // each window opens at a SPECULATE instant and closes when the
    // matching pcommit drain completes at the controller.
    std::vector<Tick> specAt, pcommitDone;
    for (const TraceEvent &e : r.events) {
        std::string name = e.name;
        if (e.kind == TraceKind::kInstant && name == "SPECULATE")
            specAt.push_back(e.tick);
        if (e.kind == TraceKind::kAsyncEnd && name == "pcommit")
            pcommitDone.push_back(e.tick);
    }
    ASSERT_EQ(specAt.size(), 2u);
    ASSERT_EQ(pcommitDone.size(), 2u);
    uint64_t traced = 0;
    for (size_t i = 0; i < 2; ++i) {
        ASSERT_GT(pcommitDone[i], specAt[i]);
        traced += pcommitDone[i] - specAt[i];
    }
    // The ledger counts pending cycles; the trace stamps the endpoint
    // ticks. Retirement notices the cleared gate within a cycle or two
    // of the controller event, so the two clocks agree to a few cycles
    // per window.
    uint64_t diff = ledger.barrierCycles > traced
        ? ledger.barrierCycles - traced
        : traced - ledger.barrierCycles;
    EXPECT_LE(diff, 8u) << "ledger " << ledger.barrierCycles
                        << " vs traced " << traced;
}

// The same stream without speculation exposes every barrier cycle: the
// ledger degenerates to the fence-stall counter.
TEST(CycleAccount, TwoEpochLedgerWithoutSpeculation)
{
    LedgerRun r = runTwoEpochs(false);
    const SpeculationLedger &ledger = r.account.ledger;

    EXPECT_EQ(ledger.specEpisodes, 0u);
    EXPECT_EQ(ledger.hiddenCycles, 0u);
    EXPECT_EQ(ledger.exposedCycles, ledger.barrierCycles);
    EXPECT_GT(ledger.barrierCycles, 0u);
    EXPECT_EQ(ledger.barrierCycles, r.stats.fenceStallCycles);
    EXPECT_EQ(r.account.cat(CycleCat::kFenceExposed),
              r.stats.fenceStallCycles);
}
