/**
 * @file
 * Tests: the pipeline trace sink and full-machine runs over multiple
 * memory controllers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/ooo_core.hh"
#include "harness/runner.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "pmem/recovery.hh"

using namespace sp;

namespace
{

constexpr Addr kA = 0x10000000;

std::string
runTraced(bool sp)
{
    std::vector<MicroOp> ops = {
        MicroOp::store(kA, 1, 8),  MicroOp::clwb(kA),
        MicroOp::sfence(),         MicroOp::pcommit(),
        MicroOp::sfence(),         MicroOp::store(kA + 64, 2, 8),
        MicroOp::alu(50),
    };
    SimConfig cfg;
    cfg.sp.enabled = sp;
    MemImage durable;
    Stats stats;
    TraceProgram prog(std::move(ops));
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    OooCore core(cfg, prog, caches, mc, stats);
    std::ostringstream sink;
    core.setTraceSink(&sink);
    core.run();
    return sink.str();
}

} // namespace

TEST(TraceSink, SpeculativeRunShowsLifecycle)
{
    std::string out = runTraced(true);
    EXPECT_NE(out.find("SPECULATE"), std::string::npos);
    EXPECT_NE(out.find("COMMIT"), std::string::npos);
    EXPECT_NE(out.find("retire*"), std::string::npos); // speculative
    EXPECT_NE(out.find("pcommit"), std::string::npos);
}

TEST(TraceSink, NonSpeculativeRunHasNoSpecEvents)
{
    std::string out = runTraced(false);
    EXPECT_EQ(out.find("SPECULATE"), std::string::npos);
    EXPECT_EQ(out.find("retire*"), std::string::npos);
    EXPECT_NE(out.find("retire "), std::string::npos);
}

TEST(TraceSink, AluNoiseSuppressed)
{
    std::string out = runTraced(false);
    EXPECT_EQ(out.find("alu"), std::string::npos);
}

TEST(MultiMc, WorkloadRunsProduceSameResults)
{
    // Controller count is a performance knob, never a correctness one.
    RunConfig one = makeRunConfig(WorkloadKind::kBTree,
                                  PersistMode::kLogPSf, true);
    one.params.initOps = 300;
    one.params.simOps = 30;
    RunConfig two = one;
    two.sim.mem.numMemCtrls = 2;
    RunResult r1 = runExperiment(one);
    RunResult r2 = runExperiment(two);
    EXPECT_EQ(r1.stats.instructions, r2.stats.instructions);
    EXPECT_EQ(r1.stats.pcommits, r2.stats.pcommits);
    auto w = makeWorkload(one.kind, one.params);
    EXPECT_EQ(w->contents(r1.durable), w->contents(r2.durable));
}

TEST(MultiMc, CrashRecoveryStillExact)
{
    RunConfig cfg = makeRunConfig(WorkloadKind::kBTree,
                                  PersistMode::kLogPSf, true);
    cfg.params.initOps = 250;
    cfg.params.simOps = 25;
    cfg.sim.mem.numMemCtrls = 2;
    RunResult full = runExperiment(cfg);
    for (unsigned i = 1; i <= 5; ++i) {
        Tick at = full.stats.cycles * i / 6;
        RunResult crashed = runExperiment(cfg, at);
        recoverImage(crashed.durable);
        uint64_t gen = Workload::generation(crashed.durable);
        auto replay = makeWorkload(cfg.kind, cfg.params);
        replay->setup();
        replay->runFunctionalToGeneration(gen);
        std::string why;
        ASSERT_TRUE(replay->checkImage(crashed.durable, &why))
            << "crash @ " << at << ": " << why;
        ASSERT_EQ(replay->contents(crashed.durable),
                  replay->contents(replay->image()));
    }
}

TEST(MultiMc, FlushLatencyHistogramPopulated)
{
    RunConfig cfg = makeRunConfig(WorkloadKind::kLinkedList,
                                  PersistMode::kLogPSf, false);
    cfg.params.initOps = 100;
    cfg.params.simOps = 10;
    RunResult r = runExperiment(cfg);
    EXPECT_EQ(r.stats.flushLatency.samples(), r.stats.pcommits);
    // Paper: persist barriers take 100s of cycles.
    EXPECT_GT(r.stats.flushLatency.mean(), 100.0);
}
