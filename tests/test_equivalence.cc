/**
 * @file
 * Property test: speculative persistence is performance-transparent.
 *
 * For randomly generated (but legal) op traces mixing stores, clwbs,
 * persist barriers, loads, and compute, the durable NVMM image after a
 * completed run must be bit-identical between the SP machine and the
 * non-speculative machine, across SSB sizes, checkpoint counts, and the
 * strict/pipelined commit engines. Speculation may only change *when*
 * things happen, never *what* ends up durable.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "sim/rng.hh"

using namespace sp;

namespace
{

constexpr Addr kBase = 0x10000000;
constexpr unsigned kBlocks = 64;

std::vector<MicroOp>
randomTrace(uint64_t seed, unsigned length)
{
    Rng rng(seed);
    std::vector<MicroOp> ops;
    uint64_t value = seed * 1000;
    for (unsigned i = 0; i < length; ++i) {
        Addr addr = kBase + rng.nextBounded(kBlocks) * kBlockBytes +
            rng.nextBounded(8) * 8;
        switch (rng.nextBounded(10)) {
          case 0:
          case 1:
          case 2:
            ops.push_back(MicroOp::store(addr, ++value, 8));
            break;
          case 3:
          case 4:
            ops.push_back(MicroOp::load(addr, 8));
            break;
          case 5:
            ops.push_back(MicroOp::clwb(addr));
            break;
          case 6: {
            // A full persist barrier.
            ops.push_back(MicroOp::sfence());
            ops.push_back(MicroOp::pcommit());
            ops.push_back(MicroOp::sfence());
            break;
          }
          case 7:
            ops.push_back(
                MicroOp::aluChain(static_cast<uint16_t>(
                    1 + rng.nextBounded(40))));
            break;
          case 8:
            ops.push_back(MicroOp::sfence());
            break;
          default:
            ops.push_back(MicroOp::alu(static_cast<uint16_t>(
                1 + rng.nextBounded(8))));
            break;
        }
    }
    // End with a full barrier so every store is durable at completion.
    for (unsigned b = 0; b < kBlocks; ++b)
        ops.push_back(MicroOp::clwb(kBase + b * kBlockBytes));
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::sfence());
    return ops;
}

MemImage
runMachine(const std::vector<MicroOp> &ops, const SpConfig &sp)
{
    SimConfig cfg;
    cfg.sp = sp;
    MemImage durable;
    Stats stats;
    TraceProgram prog(ops);
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    OooCore core(cfg, prog, caches, mc, stats);
    core.run();
    caches.writebackAll();
    mc.drainAll();
    return durable;
}

bool
imagesEqual(const MemImage &a, const MemImage &b)
{
    for (unsigned blk = 0; blk < kBlocks; ++blk) {
        uint8_t da[kBlockBytes], db[kBlockBytes];
        a.readBlock(kBase + blk * kBlockBytes, da);
        b.readBlock(kBase + blk * kBlockBytes, db);
        if (std::memcmp(da, db, kBlockBytes) != 0)
            return false;
    }
    return true;
}

} // namespace

class SpEquivalence : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SpEquivalence, DurableImageMatchesNonSpeculative)
{
    uint64_t seed = GetParam();
    auto ops = randomTrace(seed, 400);

    SpConfig off;
    off.enabled = false;
    MemImage reference = runMachine(ops, off);

    for (unsigned ssb : {32u, 256u}) {
        for (unsigned cps : {2u, 4u}) {
            SpConfig on;
            on.enabled = true;
            on.ssbEntries = ssb;
            on.checkpoints = cps;
            MemImage spec = runMachine(ops, on);
            EXPECT_TRUE(imagesEqual(reference, spec))
                << "seed " << seed << " ssb " << ssb << " cps " << cps;
        }
    }

    SpConfig strict;
    strict.enabled = true;
    strict.strictCommit = true;
    EXPECT_TRUE(imagesEqual(reference, runMachine(ops, strict)))
        << "seed " << seed << " strict commit";

    SpConfig no_peephole;
    no_peephole.enabled = true;
    no_peephole.spsPeephole = false;
    EXPECT_TRUE(imagesEqual(reference, runMachine(ops, no_peephole)))
        << "seed " << seed << " peephole off";
}

INSTANTIATE_TEST_SUITE_P(RandomTraces, SpEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12));

TEST(SpEquivalence, AbortedRunsStillConverge)
{
    auto ops = randomTrace(99, 400);
    SpConfig off;
    off.enabled = false;
    MemImage reference = runMachine(ops, off);

    SimConfig cfg;
    cfg.sp.enabled = true;
    MemImage durable;
    Stats stats;
    TraceProgram prog(ops);
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    OooCore core(cfg, prog, caches, mc, stats);
    // Pepper the whole run with probes over the trace's address range:
    // some will hit the BLT mid-speculation and force aborts.
    for (Tick t = 20; t < 20000; t += 61)
        core.scheduleProbe(t, kBase + (t % kBlocks) * kBlockBytes);
    core.run();
    caches.writebackAll();
    mc.drainAll();
    EXPECT_TRUE(imagesEqual(reference, durable));
}
