/**
 * @file
 * Fault-injection campaign suite (ctest label: robustness).
 *
 * The acceptance criteria of the fault subsystem, asserted mechanically:
 *
 *  - every injected crash -- with torn in-flight writes and jittered
 *    device latencies -- recovers to an image byte-identical to a
 *    functional replay of the recovered transaction boundary, and
 *    interrupted (double/triple-crash) recovery schedules converge to
 *    the same image;
 *  - every conflict run with the watchdog armed completes and ends with
 *    a durable image bit-identical to the golden non-speculative run's
 *    (no abort livelock, no lost transactions);
 *  - identical campaign options produce bit-identical reports at 1 and
 *    8 sweep workers;
 *  - maxCycles and invalid configurations surface as per-cell outcomes,
 *    never process-fatal errors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "harness/campaign.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "pmem/recovery.hh"
#include "sim/fault.hh"

using namespace sp;

namespace
{

/** Small-but-complete campaign over every workload (the ISSUE matrix). */
CampaignOptions
fullMatrixOptions()
{
    CampaignOptions opts;
    opts.crashPoints = 4;
    opts.conflictPeriods = {300, 3000};
    opts.initOps = 250;
    opts.simOps = 25;
    opts.seed = 7;
    return opts;
}

} // namespace

TEST(FaultCampaign, FullMatrixPassesOnAllWorkloads)
{
    CampaignOptions opts = fullMatrixOptions();
    CampaignReport report = runFaultCampaign(opts);

    // 8 workloads x (4 crash points + 2 periods x 3 policies).
    ASSERT_EQ(report.cells.size(), opts.kinds.size() * (4 + 2 * 3));
    EXPECT_EQ(opts.kinds.size(), 8u);

    EXPECT_EQ(report.exceptionCells, 0u);
    EXPECT_EQ(report.maxCyclesCells, 0u);

    // Crash axis: every cell that actually crashed must recover exactly.
    EXPECT_GT(report.recoveryChecked, 0u);
    EXPECT_EQ(report.recoveryMatched, report.recoveryChecked);

    // Conflict axis: every cell completes with a golden-identical image.
    EXPECT_EQ(report.conflictChecked, report.conflictCells);
    EXPECT_EQ(report.conflictMatched, report.conflictChecked);
    for (const CampaignCellResult &cell : report.cells) {
        if (cell.kind != CampaignCellKind::kConflict)
            continue;
        EXPECT_TRUE(cell.outcome == RunOutcome::kOk ||
                    cell.outcome == RunOutcome::kWatchdogDegraded)
            << cell.config << ": " << runOutcomeName(cell.outcome);
        EXPECT_GT(cell.conflictProbes, 0u) << cell.config;
    }

    // The adversary must actually bite somewhere (otherwise the campaign
    // proves nothing): the trailing-writer cells abort speculation.
    EXPECT_GT(report.totalAborts, 0u);
    EXPECT_TRUE(report.passed()) << report.toJson();
}

TEST(FaultCampaign, ReportIsBitIdenticalAcrossWorkerCounts)
{
    CampaignOptions opts;
    opts.kinds = {WorkloadKind::kLinkedList,
                  WorkloadKind::kAvlTreeIncremental};
    opts.crashPoints = 3;
    opts.conflictPeriods = {500};
    opts.policies = {ConflictPolicy::kUniform,
                     ConflictPolicy::kTrailWriter};
    opts.initOps = 200;
    opts.simOps = 20;
    opts.seed = 11;

    opts.workers = 1;
    CampaignReport serial = runFaultCampaign(opts);
    opts.workers = 8;
    CampaignReport parallel = runFaultCampaign(opts);

    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    EXPECT_EQ(serial.signature(), parallel.signature());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
        EXPECT_EQ(serial.cells[i].outcome, parallel.cells[i].outcome)
            << serial.cells[i].config;
        EXPECT_EQ(serial.cells[i].cycles, parallel.cells[i].cycles);
        EXPECT_EQ(serial.cells[i].aborts, parallel.cells[i].aborts);
        EXPECT_EQ(serial.cells[i].imageHash, parallel.cells[i].imageHash);
    }
    EXPECT_TRUE(serial.passed());
}

TEST(FaultCampaign, CsvAndJsonArtifactsAreWellFormed)
{
    CampaignOptions opts;
    opts.kinds = {WorkloadKind::kLinkedList};
    opts.crashPoints = 2;
    opts.conflictPeriods = {800};
    opts.policies = {ConflictPolicy::kHotSet};
    opts.initOps = 150;
    opts.simOps = 15;
    CampaignReport report = runFaultCampaign(opts);

    std::ostringstream csv;
    report.writeCsv(csv);
    std::string text = csv.str();
    EXPECT_NE(text.find("index,kind,workload,outcome"), std::string::npos);
    // Header + one line per cell.
    EXPECT_EQ(static_cast<size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              report.cells.size() + 1);

    std::string json = report.toJson();
    EXPECT_NE(json.find("\"signature\":"), std::string::npos);
    EXPECT_NE(json.find("\"passed\":true"), std::string::npos);
}

TEST(Watchdog, DegradesUnderTrailingAdversaryAndRearms)
{
    RunConfig cfg;
    cfg.kind = WorkloadKind::kLinkedList;
    cfg.params.seed = 5;
    cfg.params.initOps = 200;
    cfg.params.simOps = 40;
    cfg.params.mode = PersistMode::kLogPSf;
    cfg.sim.sp.enabled = true;
    cfg.sim.fault.conflict.enabled = true;
    cfg.sim.fault.conflict.policy = ConflictPolicy::kTrailWriter;
    cfg.sim.fault.conflict.timing = ConflictTiming::kFixed;
    cfg.sim.fault.conflict.period = 200;
    cfg.sim.fault.conflict.seed = 3;

    RunConfig noWd = cfg;
    RunResult unguarded = runExperiment(noWd);
    ASSERT_TRUE(unguarded.completed);
    ASSERT_GT(unguarded.stats.aborts, 0u)
        << "adversary too weak to abort anything; test proves nothing";

    cfg.sim.fault.watchdog.enabled = true;
    cfg.sim.fault.watchdog.abortThreshold = 2;
    cfg.sim.fault.watchdog.backoffBase = 64;
    cfg.sim.fault.watchdog.fallbackFences = 4;
    RunResult guarded = runExperiment(cfg);
    ASSERT_TRUE(guarded.completed);
    EXPECT_EQ(guarded.outcome, RunOutcome::kWatchdogDegraded);

    // The fallback fired, counted down its K fences, and re-armed.
    EXPECT_GT(guarded.stats.watchdogDegradations, 0u);
    EXPECT_GT(guarded.stats.watchdogRearms, 0u);
    EXPECT_GT(guarded.stats.degradedFences, 0u);
    EXPECT_GT(guarded.stats.watchdogBackoffs, 0u);

    // Degrading skips doomed speculation windows: strictly fewer aborts.
    EXPECT_LT(guarded.stats.aborts, unguarded.stats.aborts);

    // Liveness AND safety: both runs commit every transaction, ending at
    // the same durable state.
    EXPECT_EQ(guarded.durable.hash(), unguarded.durable.hash());
}

TEST(Watchdog, GovernorStateMachine)
{
    WatchdogConfig cfg;
    cfg.enabled = true;
    cfg.abortThreshold = 3;
    cfg.backoffBase = 100;
    cfg.backoffCap = 350;
    cfg.fallbackFences = 2;
    SpecGovernor gov(cfg);

    EXPECT_TRUE(gov.speculationAllowed(0));
    gov.noteAbort(1000);
    EXPECT_EQ(gov.abortStreak(), 1u);
    EXPECT_EQ(gov.backoffUntil(), Tick(1100));
    EXPECT_FALSE(gov.speculationAllowed(1050));
    EXPECT_TRUE(gov.speculationAllowed(1100));

    gov.noteAbort(2000); // backoff doubles
    EXPECT_EQ(gov.backoffUntil(), Tick(2200));
    gov.noteAbort(3000); // streak hits threshold -> degrade, cap at 350
    EXPECT_EQ(gov.backoffUntil(), Tick(3350));
    EXPECT_TRUE(gov.degraded());
    EXPECT_FALSE(gov.speculationAllowed(10000));

    gov.noteFenceRetired(10001);
    EXPECT_TRUE(gov.degraded());
    gov.noteFenceRetired(10002); // K = 2 reached -> re-arm, clean slate
    EXPECT_FALSE(gov.degraded());
    EXPECT_EQ(gov.abortStreak(), 0u);
    EXPECT_TRUE(gov.speculationAllowed(10003));

    // A commit resets the streak before the threshold is reached.
    gov.noteAbort(20000);
    gov.noteAbort(21000);
    gov.noteCommit(22000);
    EXPECT_EQ(gov.abortStreak(), 0u);
    EXPECT_FALSE(gov.degraded());
    EXPECT_TRUE(gov.speculationAllowed(22000));

    // A disabled governor is inert.
    SpecGovernor off{WatchdogConfig{}};
    off.noteAbort(5);
    off.noteAbort(6);
    EXPECT_TRUE(off.speculationAllowed(7));
}

TEST(ConflictInjector, ScheduleIsDeterministicAndInRange)
{
    ConflictInjectConfig cfg;
    cfg.enabled = true;
    cfg.policy = ConflictPolicy::kHotSet;
    cfg.timing = ConflictTiming::kPoisson;
    cfg.period = 500;
    cfg.seed = 42;
    const Addr base = 0x10000000;
    const uint64_t range = 1 << 20;

    ConflictInjector a(cfg, base, range);
    ConflictInjector b(cfg, base, range);
    Tick now = 0;
    for (int i = 0; i < 200; ++i) {
        ASSERT_EQ(a.nextAt(), b.nextAt());
        now = a.nextAt();
        ASSERT_GT(now, Tick(0));
        Addr pa = a.drawProbe(now);
        Addr pb = b.drawProbe(now);
        ASSERT_EQ(pa, pb) << "draw " << i;
        ASSERT_GE(pa, base);
        ASSERT_LT(pa, base + range);
        ASSERT_EQ(pa % kBlockBytes, 0u);
        ASSERT_GT(a.nextAt(), now) << "schedule must advance";
    }
    EXPECT_EQ(a.injected(), 200u);
}

TEST(ConflictInjector, TrailWriterFollowsSpecWrites)
{
    ConflictInjectConfig cfg;
    cfg.enabled = true;
    cfg.policy = ConflictPolicy::kTrailWriter;
    cfg.period = 100;
    cfg.seed = 9;
    ConflictInjector inj(cfg, 0x10000000, 1 << 20);
    inj.noteSpecWrite(0x10004321);
    EXPECT_EQ(inj.drawProbe(inj.nextAt()), blockAlign(Addr(0x10004321)));
    inj.noteSpecWrite(0x100077ff);
    EXPECT_EQ(inj.drawProbe(inj.nextAt()), blockAlign(Addr(0x100077ff)));
}

TEST(RunOutcomes, MaxCyclesIsAReportedOutcomeNotFatal)
{
    RunConfig cfg;
    cfg.kind = WorkloadKind::kLinkedList;
    cfg.params.initOps = 200;
    cfg.params.simOps = 50;
    cfg.params.mode = PersistMode::kLogPSf;
    cfg.sim.maxCycles = 2000;

    RunResult r = runExperiment(cfg);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::kMaxCycles);
    EXPECT_GE(r.stats.cycles, cfg.sim.maxCycles);

    // Through the sweep engine: one runaway cell, siblings unaffected.
    RunConfig fine = cfg;
    fine.sim.maxCycles = 0;
    std::vector<RunConfig> grid = {fine, cfg, fine};
    std::vector<SweepRunResult> results = SweepEngine().run(grid);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].outcome, RunOutcome::kOk);
    EXPECT_EQ(results[1].outcome, RunOutcome::kMaxCycles);
    EXPECT_FALSE(results[1].configDesc.empty());
    EXPECT_EQ(results[2].outcome, RunOutcome::kOk);

    SweepSummary summary = summarizeSweep(results);
    EXPECT_EQ(summary.failed, 0u); // no exception: all three ran
    EXPECT_EQ(summary.okRuns, 2u);
    EXPECT_EQ(summary.maxCyclesRuns, 1u);
    ASSERT_EQ(summary.failures.size(), 1u);
    EXPECT_EQ(summary.failures[0].outcome, RunOutcome::kMaxCycles);
    EXPECT_NE(summary.failures[0].config.find("maxCycles"),
              std::string::npos);
    EXPECT_NE(summary.toJson().find("\"maxCyclesRuns\":1"),
              std::string::npos);
}

TEST(RunOutcomes, InvalidConfigSurfacesAsExceptionRecord)
{
    RunConfig bad;
    bad.kind = WorkloadKind::kLinkedList;
    bad.params.initOps = 50;
    bad.params.simOps = 5;
    bad.sim.sp.enabled = true;
    bad.sim.sp.ssbEntries = 0;

    EXPECT_THROW(runExperiment(bad), std::invalid_argument);

    RunConfig fine = bad;
    fine.sim.sp.ssbEntries = 256;
    std::vector<RunConfig> grid = {fine, bad};
    std::vector<SweepRunResult> results = SweepEngine().run(grid);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].outcome, RunOutcome::kException);
    EXPECT_NE(results[1].error.find("ssbEntries"), std::string::npos);
    EXPECT_FALSE(results[1].configDesc.empty());

    SweepSummary summary = summarizeSweep(results);
    EXPECT_EQ(summary.failed, 1u);
    EXPECT_EQ(summary.exceptionRuns, 1u);
    ASSERT_EQ(summary.failures.size(), 1u);
    EXPECT_EQ(summary.failures[0].index, 1u);
    EXPECT_NE(summary.failures[0].error.find("ssbEntries"),
              std::string::npos);
}

TEST(RunOutcomes, JitterShiftsDurabilityButPreservesRecovery)
{
    RunConfig cfg;
    cfg.kind = WorkloadKind::kBTree;
    cfg.params.seed = 21;
    cfg.params.initOps = 150;
    cfg.params.simOps = 15;
    cfg.params.mode = PersistMode::kLogPSf;
    cfg.sim.sp.enabled = true;

    RunResult plain = runExperiment(cfg);
    ASSERT_TRUE(plain.completed);

    RunConfig jittered = cfg;
    jittered.sim.fault.crash.pcommitJitterCycles = 200;
    jittered.sim.fault.crash.seed = 4;
    RunResult slow = runExperiment(jittered);
    ASSERT_TRUE(slow.completed);
    // Jitter only ever adds latency, and the final state is unchanged.
    EXPECT_GE(slow.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(slow.durable.hash(), plain.durable.hash());

    // Crash mid-run under jitter + tearing: recovery still exact.
    jittered.sim.fault.crash.tornWrites = true;
    Tick at = plain.stats.cycles / 2;
    RunResult crashed = runExperiment(jittered, at);
    ASSERT_FALSE(crashed.completed);
    recoverImage(crashed.durable);
    uint64_t gen = Workload::generation(crashed.durable);
    auto replay = makeWorkload(cfg.kind, cfg.params);
    replay->setup();
    replay->runFunctionalToGeneration(gen);
    std::string why;
    ASSERT_TRUE(replay->checkImage(crashed.durable, &why)) << why;
    EXPECT_EQ(replay->contents(crashed.durable),
              replay->contents(replay->image()));
}
