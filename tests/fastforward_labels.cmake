# Runs at ctest load time, after gtest_discover_tests' own include has
# registered the sp_fastforward_tests cases (and set the
# <target>_TESTS variable). Here the label list is a plain literal, so
# the semicolon survives — see the note in CMakeLists.txt.
foreach(t ${sp_fastforward_tests_TESTS})
    set_tests_properties(${t} PROPERTIES LABELS "determinism;fastforward")
endforeach()
