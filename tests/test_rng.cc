/**
 * @file
 * Unit tests: deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace sp;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundOne)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 20000; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BoolExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, BoolProbabilityRoughlyHolds)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}
