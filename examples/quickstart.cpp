/**
 * @file
 * Quickstart: run one persistent-data-structure benchmark through the
 * simulated machine in all four Figure-8 variants plus speculative
 * persistence, and print the overhead ladder.
 *
 * Usage: quickstart [LL|HM|GH|SS|AT|BT|RT]
 */

#include <cstring>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace sp;

int
main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::kLinkedList;
    if (argc > 1) {
        bool matched = false;
        for (WorkloadKind k : allWorkloadKinds()) {
            if (std::strcmp(argv[1], workloadKindName(k)) == 0) {
                kind = k;
                matched = true;
            }
        }
        if (!matched) {
            std::cerr << "unknown workload '" << argv[1]
                      << "' (use LL, HM, GH, SS, AT, BT, or RT)\n";
            return 1;
        }
    }

    std::cout << "specpersist quickstart: workload "
              << workloadKindName(kind) << "\n\n";

    RunConfig base_cfg = makeRunConfig(kind, PersistMode::kNone, false);
    printConfigBanner(std::cout, base_cfg.sim);

    RunResult base = runExperiment(base_cfg);
    std::cout << "baseline: " << base.stats.cycles << " cycles, "
              << base.stats.instructions << " instructions\n\n";

    Table table({"variant", "cycles", "instr", "pcommits", "overhead"});
    auto add = [&](const char *label, PersistMode mode, bool spec) {
        RunResult r = runExperiment(makeRunConfig(kind, mode, spec));
        table.addRow({label, std::to_string(r.stats.cycles),
                      std::to_string(r.stats.instructions),
                      std::to_string(r.stats.pcommits),
                      Table::pct(r.stats.overheadVs(base.stats))});
        return r;
    };
    add("Log", PersistMode::kLog, false);
    add("Log+P", PersistMode::kLogP, false);
    add("Log+P+Sf", PersistMode::kLogPSf, false);
    RunResult sp_run = add("SP256", PersistMode::kLogPSf, true);
    table.print(std::cout);

    if (std::getenv("SP_VERBOSE")) {
        std::cout << "\n-- SP256 full stats --\n";
        sp_run.stats.print(std::cout, "  ");
    }

    std::cout << "\nSP machinery: " << sp_run.stats.epochsStarted
              << " epochs, " << sp_run.stats.spsTriples
              << " sfence-pcommit-sfence triples folded, "
              << sp_run.stats.ssbEnqueues << " SSB entries, bloom FP rate "
              << Table::num(sp_run.stats.bloomFalsePositiveRate() * 100, 2)
              << "%\n";
    return 0;
}
