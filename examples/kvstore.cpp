/**
 * @file
 * A miniature persistent key-value store built directly on the public
 * pmem API (allocator + OpEmitter + Tx), independent of the benchmark
 * classes -- the kind of application code a user of this library would
 * write. It demonstrates:
 *
 *   - hand-rolled fail-safe updates with the 4-step WAL protocol;
 *   - running that application on the simulated machine with and without
 *     speculative persistence;
 *   - crash recovery of application data.
 *
 * The store is a fixed-capacity open-addressing table of 64B records:
 * state(+0,8) key(+8,8) value(+16,40 bytes of payload).
 */

#include <cstring>
#include <iostream>
#include <string>

#include "cpu/ooo_core.hh"
#include "harness/table.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "pmem/allocator.hh"
#include "pmem/layout.hh"
#include "pmem/op_emitter.hh"
#include "pmem/recovery.hh"
#include "pmem/tx.hh"
#include "sim/rng.hh"

using namespace sp;

namespace
{

constexpr uint64_t kSlots = 4096;
constexpr Addr kTableMeta = kMetaBase + kBlockBytes;

/** The application: a persistent KV store speaking the pmem API. */
class KvStore
{
  public:
    explicit KvStore(OpEmitter &em, NvmAllocator &alloc)
        : em_(em), tx_(em)
    {
        table_ = alloc.alloc(kSlots * kBlockBytes);
        em_.store(kTableMeta + 0, table_, 8);
        em_.store(kTableMeta + 8, kSlots, 8);
        for (uint64_t i = 0; i < kSlots; ++i)
            em_.store(slot(i), 0, 8);
    }

    /** Fail-safe PUT: undo-log the slot, then write and persist it. */
    void
    put(uint64_t key, uint64_t value)
    {
        uint64_t idx = probe(key, /*for_insert=*/true);
        Addr s = slot(idx);

        tx_.begin();
        tx_.logRange(s, kBlockBytes);
        tx_.seal();

        em_.store(s + 8, key, 8);
        em_.store(s + 16, value, 8);
        em_.store(s + 24, value ^ key, 8); // payload checksum word
        em_.store(s + 0, 1, 8);
        em_.clwb(s);
        tx_.commitUpdates();
        tx_.end();
    }

    /** GET: returns true and fills `value` when the key exists. */
    bool
    get(uint64_t key, uint64_t *value)
    {
        uint64_t idx = probe(key, /*for_insert=*/false);
        Addr s = slot(idx);
        if (em_.load(s + 0, 8) != 1 || em_.load(s + 8, 8) != key)
            return false;
        *value = em_.load(s + 16, 8);
        return true;
    }

    /** Validate every record in a raw (possibly recovered) image. */
    static bool
    validate(const MemImage &img, std::string *why)
    {
        Addr table = img.readInt(kTableMeta + 0, 8);
        uint64_t slots = img.readInt(kTableMeta + 8, 8);
        for (uint64_t i = 0; i < slots; ++i) {
            Addr s = table + i * kBlockBytes;
            if (img.readInt(s, 8) != 1)
                continue;
            uint64_t key = img.readInt(s + 8, 8);
            uint64_t value = img.readInt(s + 16, 8);
            uint64_t check = img.readInt(s + 24, 8);
            if (check != (value ^ key)) {
                if (why)
                    *why = "torn record at slot " + std::to_string(i);
                return false;
            }
        }
        return true;
    }

  private:
    OpEmitter &em_;
    Tx tx_;
    Addr table_ = 0;

    Addr slot(uint64_t i) const { return table_ + i * kBlockBytes; }

    uint64_t
    probe(uint64_t key, bool for_insert)
    {
        uint64_t x = key * 0x9e3779b97f4a7c15ULL;
        uint64_t idx = (x ^ (x >> 31)) & (kSlots - 1);
        for (uint64_t n = 0; n < kSlots; ++n) {
            Addr s = slot(idx);
            uint64_t state = em_.load(s + 0, 8);
            if (state == 0)
                return idx; // empty
            if (em_.load(s + 8, 8) == key)
                return idx; // present (overwrite / hit)
            if (!for_insert && state == 0)
                return idx;
            idx = (idx + 1) & (kSlots - 1);
        }
        return idx;
    }
};

struct MachineResult
{
    Stats stats;
    MemImage durable;
};

MachineResult
runStore(bool sp_enabled, unsigned num_puts, Tick crash_at = 0)
{
    MemImage image;
    OpEmitter em(image, PersistMode::kLogPSf);
    NvmAllocator alloc(kHeapBase, kHeapBytes);
    Rng rng(7);

    em.setMuted(true);
    KvStore store(em, alloc);
    em.setMuted(false);

    unsigned done = 0;
    em.setGenerator([&] {
        if (done >= num_puts)
            return false;
        uint64_t key = rng.nextBounded(64 * 1024);
        em.aluChain(800); // application work around the request
        store.put(key, key * 1000 + done);
        ++done;
        return true;
    });

    MachineResult result;
    result.durable = image; // initial state assumed durable
    SimConfig cfg;
    cfg.sp.enabled = sp_enabled;
    MemSystem mc(cfg.mem, result.durable);
    CacheHierarchy caches(cfg, mc);
    mc.setStats(&result.stats);
    caches.setStats(&result.stats);
    OooCore core(cfg, em, caches, mc, result.stats);
    if (crash_at)
        core.runUntil(crash_at);
    else
        core.run();
    return result;
}

} // namespace

int
main()
{
    std::cout << "persistent KV store on the pmem API (1000 fail-safe "
                 "PUTs)\n\n";

    MachineResult plain = runStore(false, 1000);
    MachineResult spec = runStore(true, 1000);

    Table table({"machine", "cycles", "pcommits", "speedup"});
    table.addRow({"no speculation", std::to_string(plain.stats.cycles),
                  std::to_string(plain.stats.pcommits), "1.00x"});
    table.addRow({"speculative persistence",
                  std::to_string(spec.stats.cycles),
                  std::to_string(spec.stats.pcommits),
                  Table::num(static_cast<double>(plain.stats.cycles) /
                                 static_cast<double>(spec.stats.cycles),
                             2) + "x"});
    table.print(std::cout);

    // Crash the speculative machine mid-run and recover.
    std::cout << "\ncrashing the SP machine at 5 points:\n";
    bool all_ok = true;
    for (int i = 1; i <= 5; ++i) {
        Tick at = spec.stats.cycles * i / 6;
        MachineResult crashed = runStore(true, 1000, at);
        RecoveryResult rec = recoverImage(crashed.durable);
        std::string why;
        bool ok = KvStore::validate(crashed.durable, &why);
        std::cout << "  cycle " << at << ": "
                  << (rec.undone ? "rolled back in-flight PUT"
                                 : "no PUT in flight")
                  << " -> " << (ok ? "store consistent" : "TORN: " + why)
                  << "\n";
        all_ok = all_ok && ok;
    }
    return all_ok ? 0 : 1;
}
