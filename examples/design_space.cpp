/**
 * @file
 * Design-space explorer: sweep the SP hardware knobs (SSB size, checkpoint
 * count, NVMM banks) for one workload and print the resulting overheads --
 * the workflow an architect adopting this library would use to size the
 * structures for a new memory technology.
 *
 * Usage: design_space [LL|HM|GH|SS|AT|BT|RT]
 */

#include <cstring>
#include <iostream>

#include "harness/runner.hh"
#include "harness/table.hh"

using namespace sp;

int
main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::kBTree;
    if (argc > 1) {
        for (WorkloadKind k : allWorkloadKinds()) {
            if (std::strcmp(argv[1], workloadKindName(k)) == 0)
                kind = k;
        }
    }
    std::cout << "design-space sweep for " << workloadKindName(kind)
              << "\n\n";

    RunResult base =
        runExperiment(makeRunConfig(kind, PersistMode::kNone, false));
    RunResult nospec =
        runExperiment(makeRunConfig(kind, PersistMode::kLogPSf, false));
    std::cout << "no-SP overhead: "
              << Table::pct(nospec.stats.overheadVs(base.stats)) << "\n\n";

    {
        Table table({"SSB entries", "latency", "overhead", "max occupancy",
                     "SSB-full stalls"});
        for (unsigned entries : {32u, 64u, 128u, 256u, 512u, 1024u}) {
            RunResult r = runExperiment(
                makeRunConfig(kind, PersistMode::kLogPSf, true, entries));
            table.addRow({std::to_string(entries),
                          std::to_string(ssbLatencyFor(entries)) + " cyc",
                          Table::pct(r.stats.overheadVs(base.stats)),
                          std::to_string(r.stats.ssbMaxOccupancy),
                          std::to_string(r.stats.ssbFullStallCycles)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"checkpoints", "overhead", "checkpoint stalls",
                     "epochs"});
        for (unsigned cps : {1u, 2u, 4u, 8u}) {
            RunConfig cfg = makeRunConfig(kind, PersistMode::kLogPSf, true);
            cfg.sim.sp.checkpoints = cps;
            RunResult r = runExperiment(cfg);
            table.addRow({std::to_string(cps),
                          Table::pct(r.stats.overheadVs(base.stats)),
                          std::to_string(r.stats.checkpointStallCycles),
                          std::to_string(r.stats.epochsStarted)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"NVMM banks", "overhead", "max in-flight pcommits"});
        for (unsigned banks : {1u, 4u, 8u, 16u, 32u}) {
            RunConfig cfg = makeRunConfig(kind, PersistMode::kLogPSf, true);
            cfg.sim.mem.nvmmBanks = banks;
            RunResult r = runExperiment(cfg);
            table.addRow({std::to_string(banks),
                          Table::pct(r.stats.overheadVs(base.stats)),
                          std::to_string(r.stats.maxInflightPcommits)});
        }
        table.print(std::cout);
    }
    return 0;
}
