/**
 * @file
 * Design-space explorer: sweep the SP hardware knobs (SSB size, checkpoint
 * count, NVMM banks) for one workload and print the resulting overheads --
 * the workflow an architect adopting this library would use to size the
 * structures for a new memory technology.
 *
 * All three knob sweeps plus the two reference runs are submitted to the
 * SweepEngine as one batch and read back in submission order.
 *
 * Usage: design_space [LL|HM|GH|SS|AT|BT|RT]
 */

#include <cstring>
#include <iostream>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

using namespace sp;

int
main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::kBTree;
    if (argc > 1) {
        for (WorkloadKind k : allWorkloadKinds()) {
            if (std::strcmp(argv[1], workloadKindName(k)) == 0)
                kind = k;
        }
    }
    std::cout << "design-space sweep for " << workloadKindName(kind)
              << "\n\n";

    const std::vector<unsigned> ssbSizes = {32, 64, 128, 256, 512, 1024};
    const std::vector<unsigned> checkpointCounts = {1, 2, 4, 8};
    const std::vector<unsigned> bankCounts = {1, 4, 8, 16, 32};

    // One flat grid: [0] baseline, [1] no-SP, then the three knob sweeps.
    std::vector<RunConfig> grid;
    grid.push_back(makeRunConfig(kind, PersistMode::kNone, false));
    grid.push_back(makeRunConfig(kind, PersistMode::kLogPSf, false));
    for (unsigned entries : ssbSizes)
        grid.push_back(makeRunConfig(kind, PersistMode::kLogPSf, true,
                                     entries));
    for (unsigned cps : checkpointCounts) {
        RunConfig cfg = makeRunConfig(kind, PersistMode::kLogPSf, true);
        cfg.sim.sp.checkpoints = cps;
        grid.push_back(cfg);
    }
    for (unsigned banks : bankCounts) {
        RunConfig cfg = makeRunConfig(kind, PersistMode::kLogPSf, true);
        cfg.sim.mem.nvmmBanks = banks;
        grid.push_back(cfg);
    }

    std::vector<SweepRunResult> results = SweepEngine().run(grid);
    const Stats &base = results[0].run.stats;
    const Stats &nospec = results[1].run.stats;
    size_t next = 2;

    std::cout << "no-SP overhead: " << Table::pct(nospec.overheadVs(base))
              << "\n\n";

    {
        Table table({"SSB entries", "latency", "overhead", "max occupancy",
                     "SSB-full stalls"});
        for (unsigned entries : ssbSizes) {
            const Stats &r = results[next++].run.stats;
            table.addRow({std::to_string(entries),
                          std::to_string(ssbLatencyFor(entries)) + " cyc",
                          Table::pct(r.overheadVs(base)),
                          std::to_string(r.ssbMaxOccupancy),
                          std::to_string(r.ssbFullStallCycles)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"checkpoints", "overhead", "checkpoint stalls",
                     "epochs"});
        for (unsigned cps : checkpointCounts) {
            const Stats &r = results[next++].run.stats;
            table.addRow({std::to_string(cps),
                          Table::pct(r.overheadVs(base)),
                          std::to_string(r.checkpointStallCycles),
                          std::to_string(r.epochsStarted)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table({"NVMM banks", "overhead", "max in-flight pcommits"});
        for (unsigned banks : bankCounts) {
            const Stats &r = results[next++].run.stats;
            table.addRow({std::to_string(banks),
                          Table::pct(r.overheadVs(base)),
                          std::to_string(r.maxInflightPcommits)});
        }
        table.print(std::cout);
    }
    return 0;
}
