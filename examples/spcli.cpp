/**
 * @file
 * spcli: run any benchmark/variant/configuration from the command line
 * and print the full statistics -- the kitchen-sink driver for exploring
 * the simulator without writing code.
 *
 * Usage:
 *   spcli [--workload LL|HM|GH|SS|AT|BT|RT] [--mode base|log|logp|logpsf]
 *         [--sp] [--strict] [--ssb N] [--checkpoints N] [--banks N]
 *         [--wpq N] [--mcs N] [--ops N] [--init N] [--seed N]
 *         [--evict] [--probe-period N] [--crash-at CYCLE] [--csv]
 *         [--inject-conflicts[=uniform|hotset|trail]]
 *         [--conflict-period=N] [--poisson] [--watchdog[=N]]
 *         [--torn-writes] [--jitter=N] [--max-cycles=N]
 *         [--crash-matrix=N] [--campaign-csv=FILE]
 *         [--trace] [--trace=FILE] [--trace-csv=FILE]
 *         [--trace-categories=LIST] [--sample-every=N]
 *         [--audit[=FILE]] [--cycle-account[=FILE]]
 *         [--checksums] [--media-faults[=N]]
 *         [--fault-class=ecc|silent|mixed] [--scrub=CYCLES]
 *         [--slices[=WORKERS]] [--snapshot=FILE --snapshot-at=CYCLE]
 *         [--resume=FILE] [--sampled[=WINDOWS]]
 *
 * Exit status: 0 on success; 1 when a run or verdict fails (audit
 * violations, campaign FAILED); 2 on a usage error (unknown flag, bad
 * value, contradictory combination).
 *
 * Media faults:
 *   --checksums         arm the checksummed image format (per-line CRC
 *                       slots, CRC'd undo-log entries) so hardened
 *                       recovery can detect and repair corruption
 *   --media-faults[=N]  inject N NVMM media faults (bit flips, stuck
 *                       words, torn residue; default 4) into the crash
 *                       image; requires --crash-at or --crash-matrix
 *   --fault-class       ecc (every fault raises a MediaFault signal on
 *                       read), silent (no signal; only checksums can
 *                       catch it), or mixed (half and half; default)
 *   --scrub=CYCLES      model a patrol scrubber with this period: ECC
 *                       faults that land before the last scrub tick are
 *                       repaired before recovery ever sees them
 *
 * Cycle accounting:
 *   --cycle-account     attach the CycleAccountant (sim/cycle_account.hh)
 *                       to the run: every simulated cycle attributed to
 *                       one exclusive category, plus the hidden/exposed
 *                       persist-barrier ledger. Prints the CPI-stack
 *                       table and the machine-readable account; with
 *                       =FILE also writes the JSON there.
 *
 * Durability audit:
 *   --audit             attach the DurabilityAuditor (sim/audit.hh) to
 *                       the run: happens-before-durable checking of the
 *                       retired op stream. Prints the findings and the
 *                       machine-readable report; with =FILE also writes
 *                       the JSON report there. Exits 1 when the audit
 *                       finds violations.
 *
 * Fault injection:
 *   --inject-conflicts  arm the conflict adversary (optionally choosing
 *                       its address policy; default uniform)
 *   --conflict-period   mean cycles between adversary probes
 *   --poisson           draw probe gaps from an exponential instead of a
 *                       fixed period
 *   --watchdog          arm the forward-progress watchdog (optionally
 *                       setting the consecutive-abort threshold)
 *   --torn-writes       on a crash, tear the write on the NVMM media at
 *                       8-byte-word granularity
 *   --jitter            add up to N cycles of per-write NVMM latency
 *   --max-cycles        stop and report `max_cycles` after N cycles
 *   --crash-matrix      run a fault campaign over N crash points (plus
 *                       conflict cells when --inject-conflicts is given)
 *                       for the selected workload, then exit
 *   --campaign-csv      write the per-cell campaign record to FILE
 *
 * Tracing:
 *   --trace             stream human-readable event lines to stdout
 *   --trace=FILE        write Chrome trace-event JSON (open the file in
 *                       ui.perfetto.dev or chrome://tracing)
 *   --trace-csv=FILE    write the counter tracks as a CSV time series
 *   --trace-categories  comma list: retire,spec,epoch,ssb,cache,mem,
 *                       counters,all,default (default: "default" for
 *                       file export, "all" for --trace text)
 *   --sample-every=N    occupancy-sampler period in cycles (default 64)
 *
 * Parallel-in-time (harness/slice.hh):
 *   --slices[=W]        run the experiment sliced across W workers
 *                       (default: automatic) -- the producer snapshots
 *                       quiescent boundaries while trailing workers
 *                       replay slices with observers attached; the
 *                       result is byte-identical to the serial run
 *   --snapshot=FILE     write a whole-simulator snapshot to FILE at
 *                       --snapshot-at=CYCLE, then keep running
 *   --resume=FILE       restore FILE (taken under the SAME flags) and
 *                       run to completion; bit-identical to the
 *                       uninterrupted run
 *   --sampled[=N]       SMARTS-style sampled ESTIMATE from N windows
 *                       (default 16) with a 95% confidence interval;
 *                       with --cycle-account also estimates CPI shares
 *
 * Examples:
 *   spcli --workload BT --sp --ssb 128
 *   spcli --workload SS --mode logp --ops 5000
 *   spcli --workload LL --sp --crash-at 100000
 *   spcli --workload HM --sp --trace=hm.json --sample-every=16
 *   spcli --workload BT --sp --inject-conflicts=trail --watchdog
 *   spcli --workload LL --sp --crash-matrix=8 --torn-writes --jitter=64
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/campaign.hh"
#include "harness/machine.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/slice.hh"
#include "harness/table.hh"
#include "pmem/recovery.hh"
#include "sim/snapshot.hh"
#include "sim/trace.hh"

using namespace sp;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "spcli: " << msg << "\n";
    std::cerr <<
        "usage: spcli [--workload LL|HM|GH|SS|AT|BT|RT]\n"
        "             [--mode base|log|logp|logpsf] [--sp] [--strict]\n"
        "             [--ssb N] [--checkpoints N] [--banks N] [--wpq N]\n"
        "             [--mcs N] [--ops N] [--init N] [--seed N] [--evict]\n"
        "             [--probe-period N] [--crash-at CYCLE] [--csv]\n"
        "             [--inject-conflicts[=uniform|hotset|trail]]\n"
        "             [--conflict-period=N] [--poisson] [--watchdog[=N]]\n"
        "             [--torn-writes] [--jitter=N] [--max-cycles=N]\n"
        "             [--crash-matrix=N] [--campaign-csv=FILE]\n"
        "             [--trace] [--trace=FILE] [--trace-csv=FILE]\n"
        "             [--trace-categories=LIST] [--sample-every=N]\n"
        "             [--audit[=FILE]] [--cycle-account[=FILE]]\n"
        "             [--checksums] [--media-faults[=N]]\n"
        "             [--fault-class=ecc|silent|mixed] [--scrub=CYCLES]\n"
        "             [--slices[=WORKERS]]\n"
        "             [--snapshot=FILE --snapshot-at=CYCLE]\n"
        "             [--resume=FILE] [--sampled[=WINDOWS]]\n"
        "\n"
        "  --audit      durability audit of the retired op stream\n"
        "               (missing/late clwb, unordered flushes, redundant\n"
        "               barriers); =FILE writes the JSON report; exit 1\n"
        "               on violations\n"
        "  --cycle-account  exhaustive CPI-stack attribution and the\n"
        "               hidden/exposed persist-barrier ledger; =FILE\n"
        "               writes the JSON account\n"
        "  --checksums  arm the checksummed image format (CRC slots +\n"
        "               CRC'd undo log) for hardened recovery\n"
        "  --media-faults[=N]  inject N NVMM media faults into the crash\n"
        "               image (needs --crash-at or --crash-matrix)\n"
        "  --fault-class  ecc | silent | mixed fault population\n"
        "  --scrub=CYCLES  patrol-scrubber period for ECC faults\n"
        "  --slices[=W]  exact parallel-in-time run (byte-identical to\n"
        "               serial); pair with --trace-categories for the\n"
        "               merged trace summary\n"
        "  --snapshot=FILE --snapshot-at=CYCLE  checkpoint mid-run\n"
        "  --resume=FILE  restore a snapshot (same flags!) and continue\n"
        "  --sampled[=N]  sampled cycle ESTIMATE with 95% CI\n"
        "\n"
        "exit status: 0 ok; 1 run/verdict failure; 2 usage error\n";
    std::exit(msg ? 2 : 0);
}

uint64_t
parseNum(const char *arg, const char *flag)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0')
        usage((std::string("bad value for ") + flag).c_str());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig cfg = makeRunConfig(WorkloadKind::kLinkedList,
                                  PersistMode::kLogPSf, false);
    Tick crash_at = 0;
    unsigned crash_matrix = 0;
    std::string campaign_csv_file;
    bool csv = false;
    bool trace_text = false;
    std::string trace_file;
    std::string trace_csv_file;
    uint32_t trace_cats = 0;
    unsigned sample_every = 0;
    bool audit = false;
    std::string audit_file;
    bool account = false;
    std::string account_file;
    bool media = false;
    bool fault_class_given = false;
    bool scrub_given = false;
    bool sliced = false;
    unsigned slice_workers = 0;
    std::string snapshot_file;
    Tick snapshot_at = 0;
    std::string resume_file;
    bool sampled = false;
    unsigned sampled_windows = 0;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage((flag + " needs a value").c_str());
            return argv[++i];
        };
        // Split "--flag=value" so both argument styles work.
        std::string inline_value;
        bool has_inline = false;
        if (auto eq = flag.find('='); eq != std::string::npos) {
            inline_value = flag.substr(eq + 1);
            flag = flag.substr(0, eq);
            has_inline = true;
        }
        auto value = [&]() -> std::string {
            return has_inline ? inline_value : std::string(next());
        };
        if (flag == "--help" || flag == "-h") {
            usage();
        } else if (flag == "--workload") {
            std::string name = value();
            bool matched = false;
            for (WorkloadKind k : allWorkloadKinds()) {
                if (name == workloadKindName(k)) {
                    cfg.kind = k;
                    // Re-derive default op counts for the new kind,
                    // preserving any --ops/--init given earlier by
                    // re-applying env overrides afterwards.
                    WorkloadParams fresh = defaultParams(k);
                    fresh.mode = cfg.params.mode;
                    fresh.seed = cfg.params.seed;
                    fresh.evictOnPersist = cfg.params.evictOnPersist;
                    cfg.params = fresh;
                    applyEnvOverrides(cfg.params);
                    matched = true;
                }
            }
            if (!matched)
                usage("unknown workload");
        } else if (flag == "--mode") {
            std::string m = value();
            if (m == "base")
                cfg.params.mode = PersistMode::kNone;
            else if (m == "log")
                cfg.params.mode = PersistMode::kLog;
            else if (m == "logp")
                cfg.params.mode = PersistMode::kLogP;
            else if (m == "logpsf")
                cfg.params.mode = PersistMode::kLogPSf;
            else
                usage("unknown mode");
        } else if (flag == "--sp") {
            cfg.sim.sp.enabled = true;
        } else if (flag == "--strict") {
            cfg.sim.sp.strictCommit = true;
        } else if (flag == "--ssb") {
            cfg.sim.sp.ssbEntries =
                static_cast<unsigned>(parseNum(value().c_str(), "--ssb"));
        } else if (flag == "--checkpoints") {
            cfg.sim.sp.checkpoints = static_cast<unsigned>(
                parseNum(value().c_str(), "--checkpoints"));
        } else if (flag == "--banks") {
            cfg.sim.mem.nvmmBanks =
                static_cast<unsigned>(parseNum(value().c_str(), "--banks"));
        } else if (flag == "--wpq") {
            cfg.sim.mem.wpqEntries =
                static_cast<unsigned>(parseNum(value().c_str(), "--wpq"));
        } else if (flag == "--mcs") {
            cfg.sim.mem.numMemCtrls =
                static_cast<unsigned>(parseNum(value().c_str(), "--mcs"));
        } else if (flag == "--ops") {
            cfg.params.simOps = parseNum(value().c_str(), "--ops");
        } else if (flag == "--init") {
            cfg.params.initOps = parseNum(value().c_str(), "--init");
        } else if (flag == "--seed") {
            cfg.params.seed = parseNum(value().c_str(), "--seed");
        } else if (flag == "--evict") {
            cfg.params.evictOnPersist = true;
        } else if (flag == "--probe-period") {
            cfg.probePeriod = parseNum(value().c_str(), "--probe-period");
        } else if (flag == "--crash-at") {
            crash_at = parseNum(value().c_str(), "--crash-at");
        } else if (flag == "--inject-conflicts") {
            cfg.sim.fault.conflict.enabled = true;
            if (has_inline) {
                cfg.sim.fault.conflict.policy =
                    parseConflictPolicy(inline_value);
            }
        } else if (flag == "--conflict-period") {
            cfg.sim.fault.conflict.enabled = true;
            cfg.sim.fault.conflict.period =
                parseNum(value().c_str(), "--conflict-period");
        } else if (flag == "--poisson") {
            cfg.sim.fault.conflict.timing = ConflictTiming::kPoisson;
        } else if (flag == "--watchdog") {
            cfg.sim.fault.watchdog.enabled = true;
            if (has_inline) {
                cfg.sim.fault.watchdog.abortThreshold =
                    static_cast<unsigned>(
                        parseNum(inline_value.c_str(), "--watchdog"));
            }
        } else if (flag == "--torn-writes") {
            cfg.sim.fault.crash.tornWrites = true;
        } else if (flag == "--jitter") {
            cfg.sim.fault.crash.pcommitJitterCycles = static_cast<unsigned>(
                parseNum(value().c_str(), "--jitter"));
        } else if (flag == "--max-cycles") {
            cfg.sim.maxCycles = parseNum(value().c_str(), "--max-cycles");
        } else if (flag == "--crash-matrix") {
            crash_matrix = static_cast<unsigned>(
                parseNum(value().c_str(), "--crash-matrix"));
        } else if (flag == "--campaign-csv") {
            campaign_csv_file = value();
        } else if (flag == "--csv") {
            csv = true;
        } else if (flag == "--trace") {
            if (has_inline)
                trace_file = inline_value;
            else
                trace_text = true;
        } else if (flag == "--trace-csv") {
            trace_csv_file = value();
        } else if (flag == "--trace-categories") {
            trace_cats = parseTraceCategories(value());
        } else if (flag == "--sample-every") {
            sample_every = static_cast<unsigned>(
                parseNum(value().c_str(), "--sample-every"));
        } else if (flag == "--audit") {
            audit = true;
            cfg.audit.enabled = true;
            if (has_inline)
                audit_file = inline_value;
        } else if (flag == "--cycle-account") {
            account = true;
            cfg.account.enabled = true;
            if (has_inline)
                account_file = inline_value;
        } else if (flag == "--checksums") {
            cfg.params.checksums = true;
        } else if (flag == "--media-faults") {
            media = true;
            cfg.sim.fault.media.enabled = true;
            if (has_inline) {
                cfg.sim.fault.media.faults = static_cast<unsigned>(
                    parseNum(inline_value.c_str(), "--media-faults"));
                if (cfg.sim.fault.media.faults == 0)
                    usage("--media-faults needs at least one fault; drop "
                          "the flag to run without media corruption");
            }
        } else if (flag == "--fault-class") {
            fault_class_given = true;
            std::string c = value();
            if (c == "ecc")
                cfg.sim.fault.media.silentFraction = 0.0;
            else if (c == "silent")
                cfg.sim.fault.media.silentFraction = 1.0;
            else if (c == "mixed")
                cfg.sim.fault.media.silentFraction = 0.5;
            else
                usage("--fault-class must be ecc, silent, or mixed");
        } else if (flag == "--scrub") {
            scrub_given = true;
            cfg.sim.fault.media.scrubInterval =
                parseNum(value().c_str(), "--scrub");
        } else if (flag == "--slices") {
            sliced = true;
            if (has_inline) {
                slice_workers = static_cast<unsigned>(
                    parseNum(inline_value.c_str(), "--slices"));
            }
        } else if (flag == "--snapshot") {
            snapshot_file = value();
            if (snapshot_file.empty())
                usage("--snapshot needs a file name");
        } else if (flag == "--snapshot-at") {
            snapshot_at = parseNum(value().c_str(), "--snapshot-at");
            if (snapshot_at == 0)
                usage("--snapshot-at needs a cycle > 0");
        } else if (flag == "--resume") {
            resume_file = value();
            if (resume_file.empty())
                usage("--resume needs a file name");
        } else if (flag == "--sampled") {
            sampled = true;
            if (has_inline) {
                sampled_windows = static_cast<unsigned>(
                    parseNum(inline_value.c_str(), "--sampled"));
                if (sampled_windows == 0)
                    usage("--sampled needs at least one window");
            }
        } else {
            usage(("unknown flag " + flag).c_str());
        }
    }

    // Reject contradictory flag combinations with a pointer to the fix
    // (exit 2, like every other usage error).
    if (fault_class_given && !media)
        usage("--fault-class classifies injected media faults; add "
              "--media-faults[=N]");
    if (scrub_given && !media)
        usage("--scrub models a patrol scrubber for injected media "
              "faults; add --media-faults[=N]");
    if (media && crash_at == 0 && crash_matrix == 0)
        usage("--media-faults corrupts a crash image; add --crash-at "
              "CYCLE or --crash-matrix=N");
    cfg.sim.fault.media.seed = cfg.params.seed;

    // The parallel-in-time entry points are whole-run modes; combinations
    // that would need a different entry point are usage errors.
    bool tracing_flags =
        trace_text || !trace_file.empty() || !trace_csv_file.empty();
    if (static_cast<int>(sliced) + static_cast<int>(sampled) +
            static_cast<int>(!resume_file.empty()) >
        1) {
        usage("--slices, --sampled, and --resume are exclusive modes");
    }
    if ((sliced || sampled || !resume_file.empty()) &&
        !snapshot_file.empty()) {
        usage("--snapshot checkpoints a plain serial run; drop "
              "--slices/--sampled/--resume");
    }
    if (snapshot_file.empty() != (snapshot_at == 0))
        usage("--snapshot and --snapshot-at go together");
    if ((sliced || sampled || !resume_file.empty() ||
         !snapshot_file.empty()) &&
        (crash_at != 0 || crash_matrix != 0)) {
        usage("crash injection uses the plain serial path; drop "
              "--slices/--sampled/--snapshot/--resume");
    }
    if (sliced && tracing_flags)
        usage("--slices replays with per-slice summary tracers; use "
              "--trace-categories=LIST for the merged summary");
    if (sampled && (tracing_flags || trace_cats != 0 || audit))
        usage("--sampled estimates cycles (and CPI shares with "
              "--cycle-account); tracing and audit need an exact run");

    if (crash_matrix != 0) {
        // Campaign mode: a crash matrix (plus conflict cells when the
        // adversary is armed) for the selected workload, with the
        // mechanical pass/fail verdict the fault tests use.
        CampaignOptions opts;
        opts.kinds = {cfg.kind};
        opts.crashPoints = crash_matrix;
        opts.tornWrites = cfg.sim.fault.crash.tornWrites;
        opts.pcommitJitterCycles = cfg.sim.fault.crash.pcommitJitterCycles;
        if (cfg.sim.fault.conflict.enabled) {
            opts.conflictPeriods = {cfg.sim.fault.conflict.period};
            opts.policies = {cfg.sim.fault.conflict.policy};
            opts.timing = cfg.sim.fault.conflict.timing;
        } else {
            opts.conflictPeriods.clear();
        }
        if (cfg.sim.fault.watchdog.enabled)
            opts.watchdog = cfg.sim.fault.watchdog;
        opts.seed = cfg.params.seed;
        opts.initOps = cfg.params.initOps;
        opts.simOps = cfg.params.simOps;
        if (media) {
            opts.mediaFaults = true;
            opts.mediaFaultCount = cfg.sim.fault.media.faults;
            opts.mediaSilentFraction = cfg.sim.fault.media.silentFraction;
            opts.mediaScrubInterval = cfg.sim.fault.media.scrubInterval;
        }

        std::cout << "spcli: fault campaign, " << workloadKindName(cfg.kind)
                  << ", " << crash_matrix << " crash points"
                  << (media ? ", media faults armed" : "") << ", seed "
                  << opts.seed << "\n";
        CampaignReport report = runFaultCampaign(opts);
        for (const CampaignCellResult &cell : report.cells) {
            std::cout << "  [" << campaignCellKindName(cell.kind) << "] "
                      << cell.config << " -> "
                      << runOutcomeName(cell.outcome);
            if (cell.kind == CampaignCellKind::kCrash &&
                cell.recoveryChecked) {
                std::cout << (cell.recoveryMatched
                                  ? ", recovered exactly"
                                  : ", RECOVERY MISMATCH");
            }
            if (cell.kind == CampaignCellKind::kConflict) {
                std::cout << ", " << cell.aborts << "/"
                          << cell.conflictProbes << " probes aborted"
                          << (cell.finalStateMatched
                                  ? ", final image golden"
                                  : ", FINAL IMAGE DIFFERS");
            }
            if (cell.kind == CampaignCellKind::kMedia &&
                cell.mediaChecked) {
                std::cout << ", " << recoveryVerdictName(cell.mediaVerdict)
                          << ": " << cell.mediaApplied << " faults ("
                          << cell.mediaScrubbed << " scrubbed), "
                          << cell.mediaRepaired << " repaired, "
                          << cell.mediaDegraded << " degraded, "
                          << cell.mediaEscapes
                          << (cell.mediaEscapes == 0 ? " escapes"
                                                     : " SILENT ESCAPES");
            }
            std::cout << "\n";
        }
        if (!campaign_csv_file.empty()) {
            std::ofstream out(campaign_csv_file);
            if (!out) {
                std::cerr << "spcli: cannot write " << campaign_csv_file
                          << "\n";
                return 1;
            }
            report.writeCsv(out);
            std::cout << "campaign: wrote " << campaign_csv_file << "\n";
        }
        std::cout << report.toJson() << "\n"
                  << "campaign " << (report.passed() ? "PASSED" : "FAILED")
                  << "\n";
        return report.passed() ? 0 : 1;
    }

    std::cout << "spcli: " << workloadKindName(cfg.kind) << " "
              << persistModeName(cfg.params.mode)
              << (cfg.sim.sp.enabled ? " +SP" : "")
              << (cfg.sim.sp.strictCommit ? " (strict)" : "") << ", "
              << cfg.params.simOps << " ops, seed " << cfg.params.seed
              << "\n\n";

    // One tracer for the run, whatever combination of backends is on:
    // text lines stream during the run; file exports happen at the end.
    bool tracing =
        trace_text || !trace_file.empty() || !trace_csv_file.empty();
    std::unique_ptr<Tracer> tracer;
    if (tracing) {
        TraceOptions opts;
        opts.categories = trace_cats != 0
            ? trace_cats
            : (trace_text ? kTraceAll : kTraceDefault);
        if (sample_every != 0)
            opts.sampleEvery = sample_every;
        opts.retainEvents =
            !trace_file.empty() || !trace_csv_file.empty();
        tracer = std::make_unique<Tracer>(opts);
        if (trace_text)
            tracer->setTextSink(&std::cout);
    }

    if (sampled) {
        SampledOptions sopts;
        if (sampled_windows != 0)
            sopts.samples = sampled_windows;
        SampledEstimate est = runSampledExperiment(cfg, sopts);
        est.print(std::cout);
        std::cout << "sampled estimate: " << est.toJson() << "\n";
        return 0;
    }

    RunResult r;
    if (sliced) {
        // Exact parallel-in-time run; optional merged trace summary.
        cfg.trace.categories = trace_cats;
        if (sample_every != 0)
            cfg.trace.sampleEvery = sample_every;
        SliceOptions sopts;
        sopts.workers = slice_workers;
        r = runSlicedExperiment(cfg, sopts);
        if (cfg.trace.categories != 0) {
            std::cout << "trace summary: " << r.trace.toJson()
                      << "\n\n";
        }
    } else if (!resume_file.empty()) {
        SimSnapshot snap = SimSnapshot::readFile(resume_file);
        std::cout << "resuming " << resume_file << " at tick "
                  << snap.tick << "\n";
        // deferSetup: the snapshot carries the functional state, so the
        // fast-forward would be wasted work.
        Machine machine(cfg, tracer.get(), /*deferSetup=*/true);
        machine.restoreSnapshot(snap);
        machine.runUntil(kTickNever);
        r = machine.finish();
    } else if (!snapshot_file.empty()) {
        Machine machine(cfg, tracer.get());
        machine.runUntil(snapshot_at);
        machine.takeSnapshot().writeFile(snapshot_file);
        std::cout << "snapshot: wrote " << snapshot_file << " at tick "
                  << machine.now() << "\n";
        machine.runUntil(kTickNever);
        r = machine.finish();
    } else {
        r = runExperiment(cfg, crash_at, tracer.get());
    }
    std::cout << "outcome: " << runOutcomeName(r.outcome) << "\n\n";

    if (crash_at != 0 && !r.completed &&
        (media || cfg.params.checksums)) {
        // Hardened detect-repair-degrade recovery: the path media faults
        // and checksummed images exercise.
        std::cout << "crashed at cycle " << crash_at;
        if (media) {
            std::cout << "; " << r.mediaFaults.applied()
                      << " media faults applied ("
                      << r.mediaFaults.scrubbed() << " scrubbed)";
        }
        std::cout << "; running hardened recovery...\n";
        RecoveryOptions ropts;
        ropts.checksums = cfg.params.checksums;
        RecoveryReport rep = recoverImageHardened(r.durable, ropts);
        uint64_t gen = Workload::generation(r.durable);
        std::cout << "  verdict " << recoveryVerdictName(rep.verdict)
                  << ": " << rep.entriesApplied << "/" << rep.entriesWalked
                  << " undo entries applied, " << rep.entriesDropped
                  << " dropped, " << rep.faultsDetected
                  << " faults detected, " << rep.crcMismatches
                  << " CRC mismatches, " << rep.linesRepaired
                  << " lines repaired, " << rep.degradedLines.size()
                  << " degraded, " << rep.retries << " retries\n";
        if (rep.verdict != RecoveryVerdict::kUnrecoverable) {
            auto w = makeWorkload(cfg.kind, cfg.params);
            w->setup();
            w->runFunctionalToGeneration(gen);
            std::string why;
            bool ok = w->checkImage(r.durable, &why) &&
                w->contents(r.durable) == w->contents(w->image());
            std::cout << "  generation " << gen << " -> "
                      << (ok ? "live state recovered exactly"
                             : "MISMATCH: " + why)
                      << "\n\n";
        } else {
            std::cout << "  image reported unusable (loud failure)\n\n";
        }
    } else if (crash_at != 0 && !r.completed) {
        std::cout << "crashed at cycle " << crash_at << "; recovering the "
                  << "durable image...\n";
        RecoveryResult rec = recoverImage(r.durable);
        uint64_t gen = Workload::generation(r.durable);
        auto w = makeWorkload(cfg.kind, cfg.params);
        w->setup();
        w->runFunctionalToGeneration(gen);
        std::string why;
        bool ok = w->checkImage(r.durable, &why) &&
            w->contents(r.durable) == w->contents(w->image());
        std::cout << "  " << (rec.undone
                                  ? std::to_string(rec.entriesApplied) +
                                        " undo entries applied"
                                  : "no transaction in flight")
                  << ", generation " << gen << " -> "
                  << (ok ? "recovered exactly" : "MISMATCH: " + why)
                  << "\n\n";
    }

    if (tracer) {
        if (!trace_file.empty()) {
            std::ostringstream buf;
            tracer->writeChromeJson(buf);
            std::string doc = buf.str();
            std::string err;
            if (!jsonIsValid(doc, &err)) {
                std::cerr << "spcli: trace JSON failed self-check: " << err
                          << "\n";
                return 1;
            }
            std::ofstream out(trace_file);
            if (!out) {
                std::cerr << "spcli: cannot write " << trace_file << "\n";
                return 1;
            }
            out << doc;
            std::cout << "trace: wrote " << trace_file << " ("
                      << tracer->events().size()
                      << " events; open in ui.perfetto.dev)\n";
        }
        if (!trace_csv_file.empty()) {
            std::ofstream out(trace_csv_file);
            if (!out) {
                std::cerr << "spcli: cannot write " << trace_csv_file
                          << "\n";
                return 1;
            }
            tracer->writeCounterCsv(out);
            std::cout << "trace: wrote " << trace_csv_file
                      << " (counter time series)\n";
        }
        std::cout << "trace summary: " << tracer->summary().toJson()
                  << "\n\n";
    }

    if (account) {
        std::cout << "cycle account:\n";
        r.account.print(std::cout, "  ");
        std::cout << "perf telemetry (pools / translation caches):\n";
        r.perf.print(std::cout, "  ");
        std::string doc = r.account.toJson();
        std::string err;
        if (!jsonIsValid(doc, &err)) {
            std::cerr << "spcli: cycle-account JSON failed self-check: "
                      << err << "\n";
            return 1;
        }
        if (!account_file.empty()) {
            std::ofstream out(account_file);
            if (!out) {
                std::cerr << "spcli: cannot write " << account_file << "\n";
                return 1;
            }
            out << doc << "\n";
            std::cout << "cycle account: wrote " << account_file << "\n";
        }
        std::cout << "cycle account: " << doc << "\n\n";
    }

    bool audit_dirty = false;
    if (audit) {
        const AuditReport &rep = r.audit;
        audit_dirty = !rep.clean();
        std::cout << "audit: " << (rep.clean() ? "clean" : "VIOLATIONS")
                  << " -- " << rep.stores << " stores, " << rep.flushes
                  << " flushes, " << rep.pcommits << " pcommits, "
                  << rep.fences << " fences, " << rep.epochs
                  << " epochs; " << rep.redundantFlushes
                  << " redundant flushes, " << rep.redundantFences
                  << " redundant fences, " << rep.redundantPcommits
                  << " redundant pcommits\n";
        for (const AuditFinding &f : rep.findings)
            std::cout << "  " << f.toString() << "\n";
        if (rep.findingsTruncated)
            std::cout << "  (findings truncated)\n";
        std::string doc = rep.toJson();
        std::string err;
        if (!jsonIsValid(doc, &err)) {
            std::cerr << "spcli: audit JSON failed self-check: " << err
                      << "\n";
            return 1;
        }
        if (!audit_file.empty()) {
            std::ofstream out(audit_file);
            if (!out) {
                std::cerr << "spcli: cannot write " << audit_file << "\n";
                return 1;
            }
            out << doc << "\n";
            std::cout << "audit: wrote " << audit_file << "\n";
        }
        std::cout << "audit report: " << doc << "\n\n";
    }

    if (csv) {
        std::cout << statsCsvHeader() << "\n"
                  << statsCsvRow(workloadKindName(cfg.kind), r.stats)
                  << "\n";
    } else {
        r.stats.print(std::cout, "  ");
        if (r.stats.flushLatency.samples() > 0) {
            std::cout << "\n  pcommit flush latency:\n";
            r.stats.flushLatency.print(std::cout, "    ");
        }
    }
    return audit_dirty ? 1 : 0;
}
