/**
 * @file
 * spcli: run any benchmark/variant/configuration from the command line
 * and print the full statistics -- the kitchen-sink driver for exploring
 * the simulator without writing code.
 *
 * Usage:
 *   spcli [--workload LL|HM|GH|SS|AT|BT|RT] [--mode base|log|logp|logpsf]
 *         [--sp] [--strict] [--ssb N] [--checkpoints N] [--banks N]
 *         [--wpq N] [--mcs N] [--ops N] [--init N] [--seed N]
 *         [--evict] [--probe-period N] [--crash-at CYCLE] [--csv]
 *         [--trace]
 *
 * Examples:
 *   spcli --workload BT --sp --ssb 128
 *   spcli --workload SS --mode logp --ops 5000
 *   spcli --workload LL --sp --crash-at 100000
 */

#include <cstring>
#include <iostream>
#include <string>

#include "cpu/ooo_core.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "harness/table.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "pmem/recovery.hh"

using namespace sp;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "spcli: " << msg << "\n";
    std::cerr <<
        "usage: spcli [--workload LL|HM|GH|SS|AT|BT|RT]\n"
        "             [--mode base|log|logp|logpsf] [--sp] [--strict]\n"
        "             [--ssb N] [--checkpoints N] [--banks N] [--wpq N]\n"
        "             [--mcs N] [--ops N] [--init N] [--seed N] [--evict]\n"
        "             [--probe-period N] [--crash-at CYCLE] [--csv]\n"
        "             [--trace]\n";
    std::exit(msg ? 1 : 0);
}

uint64_t
parseNum(const char *arg, const char *flag)
{
    char *end = nullptr;
    uint64_t v = std::strtoull(arg, &end, 10);
    if (end == arg || *end != '\0')
        usage((std::string("bad value for ") + flag).c_str());
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    RunConfig cfg = makeRunConfig(WorkloadKind::kLinkedList,
                                  PersistMode::kLogPSf, false);
    Tick crash_at = 0;
    bool csv = false;
    bool trace = false;

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage((flag + " needs a value").c_str());
            return argv[++i];
        };
        if (flag == "--help" || flag == "-h") {
            usage();
        } else if (flag == "--workload") {
            const char *name = next();
            bool matched = false;
            for (WorkloadKind k : allWorkloadKinds()) {
                if (std::strcmp(name, workloadKindName(k)) == 0) {
                    cfg.kind = k;
                    // Re-derive default op counts for the new kind,
                    // preserving any --ops/--init given earlier by
                    // re-applying env overrides afterwards.
                    WorkloadParams fresh = defaultParams(k);
                    fresh.mode = cfg.params.mode;
                    fresh.seed = cfg.params.seed;
                    fresh.evictOnPersist = cfg.params.evictOnPersist;
                    cfg.params = fresh;
                    applyEnvOverrides(cfg.params);
                    matched = true;
                }
            }
            if (!matched)
                usage("unknown workload");
        } else if (flag == "--mode") {
            std::string m = next();
            if (m == "base")
                cfg.params.mode = PersistMode::kNone;
            else if (m == "log")
                cfg.params.mode = PersistMode::kLog;
            else if (m == "logp")
                cfg.params.mode = PersistMode::kLogP;
            else if (m == "logpsf")
                cfg.params.mode = PersistMode::kLogPSf;
            else
                usage("unknown mode");
        } else if (flag == "--sp") {
            cfg.sim.sp.enabled = true;
        } else if (flag == "--strict") {
            cfg.sim.sp.strictCommit = true;
        } else if (flag == "--ssb") {
            cfg.sim.sp.ssbEntries =
                static_cast<unsigned>(parseNum(next(), "--ssb"));
        } else if (flag == "--checkpoints") {
            cfg.sim.sp.checkpoints =
                static_cast<unsigned>(parseNum(next(), "--checkpoints"));
        } else if (flag == "--banks") {
            cfg.sim.mem.nvmmBanks =
                static_cast<unsigned>(parseNum(next(), "--banks"));
        } else if (flag == "--wpq") {
            cfg.sim.mem.wpqEntries =
                static_cast<unsigned>(parseNum(next(), "--wpq"));
        } else if (flag == "--mcs") {
            cfg.sim.mem.numMemCtrls =
                static_cast<unsigned>(parseNum(next(), "--mcs"));
        } else if (flag == "--ops") {
            cfg.params.simOps = parseNum(next(), "--ops");
        } else if (flag == "--init") {
            cfg.params.initOps = parseNum(next(), "--init");
        } else if (flag == "--seed") {
            cfg.params.seed = parseNum(next(), "--seed");
        } else if (flag == "--evict") {
            cfg.params.evictOnPersist = true;
        } else if (flag == "--probe-period") {
            cfg.probePeriod = parseNum(next(), "--probe-period");
        } else if (flag == "--crash-at") {
            crash_at = parseNum(next(), "--crash-at");
        } else if (flag == "--csv") {
            csv = true;
        } else if (flag == "--trace") {
            trace = true;
        } else {
            usage(("unknown flag " + flag).c_str());
        }
    }

    std::cout << "spcli: " << workloadKindName(cfg.kind) << " "
              << persistModeName(cfg.params.mode)
              << (cfg.sim.sp.enabled ? " +SP" : "")
              << (cfg.sim.sp.strictCommit ? " (strict)" : "") << ", "
              << cfg.params.simOps << " ops, seed " << cfg.params.seed
              << "\n\n";

    if (trace) {
        // Tracing needs direct access to the core; drive the machine
        // inline (small op counts advised).
        auto workload = makeWorkload(cfg.kind, cfg.params);
        workload->setup();
        MemImage durable = workload->image();
        Stats stats;
        MemSystem mc(cfg.sim.mem, durable);
        CacheHierarchy caches(cfg.sim, mc);
        mc.setStats(&stats);
        caches.setStats(&stats);
        OooCore core(cfg.sim, workload->program(), caches, mc, stats);
        core.setTraceSink(&std::cout);
        core.run();
        std::cout << "\ntotal: " << stats.cycles << " cycles\n";
        return 0;
    }

    RunResult r = runExperiment(cfg, crash_at);

    if (crash_at != 0 && !r.completed) {
        std::cout << "crashed at cycle " << crash_at << "; recovering the "
                  << "durable image...\n";
        RecoveryResult rec = recoverImage(r.durable);
        uint64_t gen = Workload::generation(r.durable);
        auto w = makeWorkload(cfg.kind, cfg.params);
        w->setup();
        w->runFunctionalToGeneration(gen);
        std::string why;
        bool ok = w->checkImage(r.durable, &why) &&
            w->contents(r.durable) == w->contents(w->image());
        std::cout << "  " << (rec.undone
                                  ? std::to_string(rec.entriesApplied) +
                                        " undo entries applied"
                                  : "no transaction in flight")
                  << ", generation " << gen << " -> "
                  << (ok ? "recovered exactly" : "MISMATCH: " + why)
                  << "\n\n";
    }

    if (csv) {
        std::cout << statsCsvHeader() << "\n"
                  << statsCsvRow(workloadKindName(cfg.kind), r.stats)
                  << "\n";
    } else {
        r.stats.print(std::cout, "  ");
        if (r.stats.flushLatency.samples() > 0) {
            std::cout << "\n  pcommit flush latency:\n";
            r.stats.flushLatency.print(std::cout, "    ");
        }
    }
    return 0;
}
