/**
 * @file
 * Crash-recovery demonstration: run the fail-safe (Log+P+Sf) B-tree
 * workload under speculative persistence, crash the machine at several
 * points, and show that undo-log recovery always restores a valid tree
 * whose contents exactly match a functional replay up to the recovered
 * transaction boundary.
 *
 * This exercises the property the paper's write-ahead-logging protocol
 * exists to provide -- and shows that SP does not weaken it, because
 * speculative state never reaches the NVMM out of order.
 *
 * Usage: crash_recovery [crash-points]
 */

#include <cstdlib>
#include <iostream>

#include "harness/runner.hh"
#include "pmem/recovery.hh"

using namespace sp;

int
main(int argc, char **argv)
{
    unsigned crash_points = argc > 1 ? std::atoi(argv[1]) : 8;

    RunConfig cfg = makeRunConfig(WorkloadKind::kBTree,
                                  PersistMode::kLogPSf, true);
    cfg.params.initOps = 2000;
    cfg.params.simOps = 120;

    // A reference run tells us how long the whole workload takes.
    RunResult full = runExperiment(cfg);
    std::cout << "full run: " << full.stats.cycles << " cycles, "
              << full.stats.pcommits << " pcommits, "
              << full.stats.epochsStarted << " speculative epochs\n\n";

    unsigned failures = 0;
    for (unsigned i = 1; i <= crash_points; ++i) {
        Tick crash_at = full.stats.cycles * i / (crash_points + 1);
        RunResult crashed = runExperiment(cfg, crash_at);

        // Power fails: caches and the WPQ are gone; only crashed.durable
        // survives. Run recovery on it.
        RecoveryResult rec = recoverImage(crashed.durable);
        uint64_t gen = Workload::generation(crashed.durable);

        // Rebuild the expected state by functional replay to the same
        // transaction boundary.
        auto replay = makeWorkload(cfg.kind, cfg.params);
        replay->setup();
        replay->runFunctionalToGeneration(gen);

        std::string why;
        bool ok = replay->checkImage(crashed.durable, &why) &&
            replay->contents(crashed.durable) ==
                replay->contents(replay->image());

        std::cout << "crash @ cycle " << crash_at << ": generation " << gen
                  << ", " << (rec.undone
                                  ? "undo log applied (" +
                                        std::to_string(rec.entriesApplied) +
                                        " entries)"
                                  : "no transaction in flight")
                  << " -> " << (ok ? "RECOVERED, contents exact" : "FAILED")
                  << (ok ? "" : " (" + why + ")") << "\n";
        if (!ok)
            ++failures;
    }

    if (failures) {
        std::cout << "\n" << failures << " crash points FAILED\n";
        return 1;
    }
    std::cout << "\nall crash points recovered to exact transaction "
                 "boundaries\n";
    return 0;
}
