/**
 * @file
 * Annotated pipeline trace of one persistent transaction, with and
 * without speculative persistence -- the fastest way to *see* what the
 * paper's mechanism does.
 *
 * The trace is the linked-list example of the paper's Section 2.2:
 *
 *   st X; clwb X; sfence; pcommit; sfence; st Y; ...
 *
 * Without SP, the second sfence stalls retirement for the pcommit's full
 * NVMM latency. With SP, a checkpoint is taken, the fence retires
 * speculatively (look for "SPECULATE"), the following work retires into
 * the SSB ("retire*" lines), and the epoch commits in the background
 * ("COMMIT").
 *
 * The text lines are the trace bus's text backend (sim/trace.hh): the
 * same events feed the Chrome-JSON exporter, so `spcli --trace=FILE`
 * shows this exact story on a Perfetto timeline. Each run ends with its
 * TraceSummary -- the condensed stall/epoch histograms sweeps aggregate.
 */

#include <iostream>

#include "cpu/ooo_core.hh"
#include "isa/program.hh"
#include "mem/cache_hierarchy.hh"
#include "mem/mem_system.hh"
#include "sim/trace.hh"

using namespace sp;

namespace
{

std::vector<MicroOp>
transactionTrace()
{
    constexpr Addr kX = 0x10000000;
    constexpr Addr kY = 0x10010000;
    std::vector<MicroOp> ops;
    ops.push_back(MicroOp::store(kX, 1, 8));
    ops.push_back(MicroOp::clwb(kX));
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::store(kY, 2, 8));
    ops.push_back(MicroOp::clwb(kY));
    ops.push_back(MicroOp::sfence());
    ops.push_back(MicroOp::pcommit());
    ops.push_back(MicroOp::sfence());
    for (int i = 0; i < 40; ++i)
        ops.push_back(MicroOp::aluChain(1, i == 0 ? 0 : 1));
    ops.push_back(MicroOp::load(kX, 8));
    return ops;
}

Tick
run(bool sp)
{
    std::cout << "----- " << (sp ? "speculative persistence"
                                 : "no speculation")
              << " -----\n";
    SimConfig cfg;
    cfg.sp.enabled = sp;
    MemImage durable;
    Stats stats;
    TraceProgram prog(transactionTrace());
    MemSystem mc(cfg.mem, durable);
    CacheHierarchy caches(cfg, mc);
    OooCore core(cfg, prog, caches, mc, stats);
    TraceOptions opts;
    opts.categories = kTraceAll;
    Tracer tracer(opts);
    tracer.setTextSink(&std::cout);
    core.setTracer(&tracer);
    core.run();
    std::cout << "total: " << stats.cycles << " cycles\n";
    std::cout << "summary: " << tracer.summary().toJson() << "\n\n";
    return stats.cycles;
}

} // namespace

int
main()
{
    Tick without = run(false);
    Tick with = run(true);
    std::cout << "speculation hid " << (without - with) << " cycles ("
              << (100 * (without - with) / without) << "% of the run)\n";
    return 0;
}
